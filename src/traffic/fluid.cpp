#include "traffic/fluid.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

namespace cb::traffic {

namespace {

/// A flow whose residual is within this of zero is complete; the remainder
/// is banked as its final segment at the completion instant.
constexpr double kCompleteEpsBytes = 0.5;
/// Completion events are scheduled this far past the analytic completion
/// instant so integer-nanosecond truncation can never fire them early.
constexpr Duration kEventGuard = Duration::us(1);

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// ---------------------------------------------------------------------------
// FillPool: the drain-phase worker pool (PR 3 trial_runner idiom, adapted to
// a reusable barrier: one task list per drain, main thread participates).
// Work items are claimed off a shared atomic counter, so the ASSIGNMENT of
// cells to threads is racy on purpose — but cells are disjoint and every
// observable side effect lives in a per-cell outcome slot committed later in
// cell-id order, so the race is invisible in the results.
//
// Generation retirement: run() may not return — and the next run() may not
// reset next_/task_ — while any helper is still inside claim_loop for the
// current generation. Otherwise a helper that finished the last item could
// loop back to next_.fetch_add after the counter was reset and claim index 0
// of the NEXT drain with the PREVIOUS, already-destroyed task. active_ counts
// helpers inside claim_loop; run() waits for done_ == total_ AND active_ == 0,
// and nulls task_ under the lock so a late-waking helper sees the generation
// is already retired. The TSan CI leg runs the thread-identity test against
// exactly this protocol.
// ---------------------------------------------------------------------------
class FluidEngine::FillPool {
 public:
  explicit FillPool(unsigned helpers) {
    threads_.reserve(helpers);
    for (unsigned i = 0; i < helpers; ++i) threads_.emplace_back([this] { loop(); });
  }

  ~FillPool() {
    {
      std::lock_guard<std::mutex> l(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Run task(0..n-1) across helpers + the calling thread; returns when all
  /// n items are done. Not reentrant.
  void run(std::size_t n, const std::function<void(std::size_t)>& task) {
    {
      std::lock_guard<std::mutex> l(mu_);
      task_ = &task;
      total_ = n;
      next_.store(0, std::memory_order_relaxed);
      done_ = 0;
      ++gen_;
    }
    cv_start_.notify_all();
    claim_loop(task, n);
    // Wait for every item to be done AND every helper to have left
    // claim_loop: only then is it safe for the caller to destroy `task` and
    // for the next run() to reset next_/task_ (see class comment).
    std::unique_lock<std::mutex> l(mu_);
    cv_done_.wait(l, [&] { return done_ == total_ && active_ == 0; });
    task_ = nullptr;
  }

 private:
  void claim_loop(const std::function<void(std::size_t)>& task, std::size_t n) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      task(i);
      std::lock_guard<std::mutex> l(mu_);
      if (++done_ == total_) cv_done_.notify_all();
    }
  }

  void loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task;
      std::size_t n;
      {
        std::unique_lock<std::mutex> l(mu_);
        cv_start_.wait(l, [&] { return stop_ || gen_ != seen; });
        if (stop_) return;
        seen = gen_;
        // task_ is nulled (under mu_) when a generation retires, so a helper
        // that wakes after run() already returned sees nullptr and parks
        // again instead of touching a destroyed task.
        if (task_ == nullptr) continue;
        task = task_;
        n = total_;
        ++active_;
      }
      claim_loop(*task, n);
      {
        std::lock_guard<std::mutex> l(mu_);
        if (--active_ == 0) cv_done_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t total_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t done_ = 0;
  std::size_t active_ = 0;  // helpers currently inside claim_loop
  std::uint64_t gen_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// FluidEngine
// ---------------------------------------------------------------------------

FluidEngine::FluidEngine(sim::Simulator& sim, SessionArena& arena, unsigned fill_threads)
    : sim_(sim), arena_(arena), threads_(fill_threads == 0 ? 1u : fill_threads) {
  if (threads_ > 1) pool_ = std::make_unique<FillPool>(threads_ - 1);
}

FluidEngine::~FluidEngine() = default;

void FluidEngine::CellOutcome::reset() {
  segment_bytes = 0.0;
  clamped_bytes = 0.0;
  negative_residuals = 0;
  min_completion_s = kInf;
  ghost_changes.clear();
}

std::uint32_t FluidEngine::add_cell(double capacity_bps) {
  Cell c;
  c.capacity_bps = capacity_bps;
  c.last_accrual = sim_.now();
  cells_.push_back(std::move(c));
  return static_cast<std::uint32_t>(cells_.size() - 1);
}

void FluidEngine::set_cell_capacity(std::uint32_t cell, double capacity_bps) {
  // Accrue at the OLD rates first — the capacity change takes effect now,
  // not retroactively over the elapsed accrual window.
  accrue_now(cells_[cell]);
  cells_[cell].capacity_bps = capacity_bps;
  mark_dirty(cell);
}

void FluidEngine::start_flow(SessionId id, double bytes) {
  assert(arena_.mode(id) == FlowMode::Idle);
  arena_.mode(id) = FlowMode::Fluid;
  arena_.demand_bytes(id) = bytes;
  arena_.delivered_bytes(id) = 0.0;
  arena_.rate_bps(id) = 0.0;
  arena_.start_ns(id) = sim_.now().nanos();
  Cell& c = cells_[arena_.cell(id)];
  accrue_now(c);  // existing members accrue before the newcomer dilutes them
  insert_member(c, id);
  ++active_fluid_;
  mark_dirty(arena_.cell(id));
}

void FluidEngine::handover(SessionId id, std::uint32_t new_cell) {
  const std::uint32_t old_cell = arena_.cell(id);
  if (old_cell == new_cell) return;
  // Bank both cells up to now BEFORE moving the member: the flow earns its
  // final window in the old cell at the old rate, and the new cell's
  // incumbents bank theirs before the arrival dilutes them.
  accrue_now(cells_[old_cell]);
  accrue_now(cells_[new_cell]);
  remove_member(cells_[old_cell], id);
  arena_.cell(id) = new_cell;
  insert_member(cells_[new_cell], id);
  mark_dirty(old_cell);
  mark_dirty(new_cell);
}

void FluidEngine::set_flow_cap(SessionId id, double cap_bps) {
  const FlowMode mode = arena_.mode(id);
  if (mode != FlowMode::Fluid && mode != FlowMode::Packet) {
    arena_.cap_bps(id) = cap_bps;  // not a cell member — no order to maintain
    return;
  }
  Cell& c = cells_[arena_.cell(id)];
  accrue_now(c);
  // Reposition in the persistent fill order: remove at the old key, insert
  // at the new one. O(log n) search + one memmove, vs the old full re-sort.
  remove_order(c, id, order_key(id));
  arena_.cap_bps(id) = cap_bps;
  insert_order(c, id, order_key(id));
  mark_dirty(arena_.cell(id));
}

double FluidEngine::demote(SessionId id) {
  assert(arena_.mode(id) == FlowMode::Fluid);
  // Bank progress up to this instant, then hand the residual to the lane.
  accrue_now(cells_[arena_.cell(id)]);
  arena_.mode(id) = FlowMode::Packet;
  arena_.rate_bps(id) = 0.0;  // the fill below publishes the ghost share
  --active_fluid_;
  ++demotions_;
  // Immediate fill (not deferred to the drain): the caller sizes the packet
  // lane from the ghost share the moment we return.
  fill_cell_now(arena_.cell(id));
  return arena_.residual_bytes(id);
}

void FluidEngine::promote(SessionId id) {
  assert(arena_.mode(id) == FlowMode::Packet);
  // Bank the cell while the flow is still a ghost, mirroring demote(): the
  // ghost carries a nonzero published share, and accruing after the mode
  // flip would credit that share over the packet window as fluid segments —
  // bytes the lane already delivered via TCP.
  accrue_now(cells_[arena_.cell(id)]);
  arena_.mode(id) = FlowMode::Fluid;
  ++active_fluid_;
  ++promotions_;
  fill_cell_now(arena_.cell(id));
}

void FluidEngine::finish_packet_flow(SessionId id) {
  assert(arena_.mode(id) == FlowMode::Packet);
  Cell& c = cells_[arena_.cell(id)];
  accrue_now(c);
  arena_.mode(id) = FlowMode::Done;
  arena_.rate_bps(id) = 0.0;
  arena_.finish_ns(id) = sim_.now().nanos();
  remove_member(c, id);
  mark_dirty(arena_.cell(id));
}

void FluidEngine::accrue_all() {
  for (Cell& c : cells_) accrue_now(c);
}

void FluidEngine::flush() {
  if (drain_scheduled_) {
    drain_event_.cancel();
    drain_scheduled_ = false;
  }
  drain();
}

// --- accrual ----------------------------------------------------------------

void FluidEngine::accrue_cell(Cell& c, CellOutcome& out) {
  const TimePoint now = sim_.now();
  const double dt_s = (now - c.last_accrual).to_seconds();
  c.last_accrual = now;
  if (dt_s <= 0.0) return;
  for (SessionId id : c.flows) {
    if (arena_.mode(id) != FlowMode::Fluid) continue;  // ghosts progress via packets
    const double offered = arena_.rate_bps(id) * dt_s / 8.0;
    if (offered <= 0.0) continue;
    const double residual = arena_.residual_bytes(id);
    if (residual < 0.0) ++out.negative_residuals;
    const double add = std::min(offered, std::max(residual, 0.0));
    arena_.delivered_bytes(id) += add;
    out.segment_bytes += add;
    out.clamped_bytes += offered - add;
  }
}

void FluidEngine::accrue_now(Cell& c) {
  CellOutcome out;
  out.reset();
  accrue_cell(c, out);
  segment_bytes_ += out.segment_bytes;
  clamped_bytes_ += out.clamped_bytes;
  negative_residuals_ += out.negative_residuals;
}

// --- water-filling ----------------------------------------------------------

double FluidEngine::order_key(SessionId id) const {
  const double cap = arena_.cap_bps(id);
  return cap > 0.0 ? cap / arena_.weight(id) : kInf;
}

void FluidEngine::fill_cell(Cell& c, CellOutcome& out) {
  accrue_cell(c, out);

  // Weighted max-min fairness with per-flow caps, one water-filling pass
  // over the persistently maintained (cap/weight, id) order: a flow whose
  // cap is below the running fair level keeps its cap, everyone after
  // shares the leftovers in proportion to weight. The weight sum is taken
  // fresh over the id-ordered member list — NOT kept as a running
  // aggregate — so the fill arithmetic is bit-identical to a from-scratch
  // water-fill of the same members (the churn-equivalence property test
  // holds to the last ulp).
  double remaining = c.capacity_bps;
  double weight_left = 0.0;
  for (SessionId id : c.flows) weight_left += arena_.weight(id);

  for (SessionId id : c.order) {
    const double w = arena_.weight(id);
    double rate = 0.0;
    if (remaining > 0.0 && weight_left > 0.0) {
      const double fair = remaining * w / weight_left;
      const double cap = arena_.cap_bps(id);
      rate = (cap > 0.0 && cap < fair) ? cap : fair;
    }
    remaining -= rate;
    weight_left -= w;
    if (arena_.mode(id) == FlowMode::Packet) {
      // Ghost: record the share for the packet lane when it moves. The
      // callback itself runs at commit time on the main thread.
      if (rate != arena_.rate_bps(id)) {
        arena_.rate_bps(id) = rate;
        out.ghost_changes.emplace_back(id, rate);
      }
    } else {
      arena_.rate_bps(id) = rate;
    }
  }

  // Next rate-change point this cell generates on its own: the earliest
  // fluid completion at the just-computed rates.
  double min_dt_s = kInf;
  for (SessionId id : c.flows) {
    if (arena_.mode(id) != FlowMode::Fluid) continue;
    const double rate = arena_.rate_bps(id);
    if (rate <= 0.0) continue;
    const double dt = arena_.residual_bytes(id) * 8.0 / rate;
    min_dt_s = std::min(min_dt_s, std::max(dt, 0.0));
  }
  out.min_completion_s = min_dt_s;
}

void FluidEngine::commit_outcome(std::uint32_t cell_id, CellOutcome& out) {
  segment_bytes_ += out.segment_bytes;
  clamped_bytes_ += out.clamped_bytes;
  negative_residuals_ += out.negative_residuals;
  ++rate_events_;

  Cell& c = cells_[cell_id];
  c.next_completion.cancel();
  if (out.min_completion_s != kInf) {
    c.next_completion = sim_.schedule(Duration::seconds(out.min_completion_s) + kEventGuard,
                                      [this, cell_id] { fire(cell_id); });
  }
  if (on_rate_share) {
    const std::uint64_t seq = c.fill_seq;
    for (const auto& [id, rate] : out.ghost_changes) {
      if (c.fill_seq == seq) {
        on_rate_share(id, rate);
      } else if (arena_.mode(id) == FlowMode::Packet) {
        // A handler above demoted/promoted in THIS cell: fill_cell_now has
        // already committed fresh shares, so our remaining entries are
        // stale. Replay each at the current arena share (the inline fill
        // only reported ghosts that moved relative to values we wrote, so
        // skipping would lose updates), dropping flows no longer in packet
        // mode.
        on_rate_share(id, arena_.rate_bps(id));
      }
    }
  }
}

void FluidEngine::fill_cell_now(std::uint32_t cell_id) {
  Cell& c = cells_[cell_id];
  c.dirty = false;  // a stale drain_queue_ entry just becomes a no-op
  // Invalidate any not-yet-committed outcome the current drain holds for
  // this cell: this fill is fresher (see the supersession check in drain()).
  ++c.fill_seq;
  // Local outcome, not a shared scratch: an on_rate_share handler fired by
  // the commit may re-enter the engine (e.g. a cap change), and a nested
  // fill must not clobber the outcome being committed.
  CellOutcome out;
  out.reset();
  fill_cell(c, out);
  commit_outcome(cell_id, out);
}

// --- dirty-cell epochs ------------------------------------------------------

void FluidEngine::mark_dirty(std::uint32_t cell_id) {
  Cell& c = cells_[cell_id];
  c.dirty = true;
  if (!c.queued) {
    c.queued = true;
    drain_queue_.push_back(cell_id);
  }
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    // Zero-delay: runs at THIS timestamp, after every already-queued event
    // at it — so a burst of same-instant churn (an epoch of shaper
    // resamples, a fault demoting a whole cell) coalesces into one fill
    // per dirty cell. No sim time passes before the fill, so deferral
    // never misattributes a single byte.
    drain_event_ = sim_.schedule(Duration::zero(), [this] { drain(); });
  }
}

void FluidEngine::drain() {
  drain_scheduled_ = false;
  if (drain_queue_.empty()) return;

  // Snapshot this epoch's dirty cells in ascending cell-id order — the
  // commit order, and therefore the event-scheduling and callback order,
  // is independent of the order mutations happened to queue them.
  drain_cells_.clear();
  for (std::uint32_t cell_id : drain_queue_) {
    Cell& c = cells_[cell_id];
    c.queued = false;
    if (c.dirty) {
      c.dirty = false;
      drain_cells_.push_back(cell_id);
    }
  }
  drain_queue_.clear();
  std::sort(drain_cells_.begin(), drain_cells_.end());

  const std::size_t n = drain_cells_.size();
  if (drain_outcomes_.size() < n) drain_outcomes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    drain_outcomes_[i].reset();
    // Stamp the outcome with the cell's fill generation; fill_cell_now can
    // only run from the main-thread commit loop below, so nothing moves the
    // stamp between here and the cell's fill.
    drain_outcomes_[i].fill_seq = cells_[drain_cells_[i]].fill_seq;
  }

  if (pool_ && n > 1) {
    // Parallel phase: workers write only their own cell's arena rows and
    // outcome slot; the Simulator is never touched off-thread (the main
    // thread is parked inside run() until every fill is done).
    pool_->run(n, [this](std::size_t i) {
      fill_cell(cells_[drain_cells_[i]], drain_outcomes_[i]);
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) fill_cell(cells_[drain_cells_[i]], drain_outcomes_[i]);
  }

  // Serial commit in ascending cell-id order: ledger reduction, completion
  // event scheduling, and ghost-share callbacks happen in the same order at
  // any thread count — bit-identical to the serial engine. A callback that
  // re-dirties a cell schedules a fresh drain event at this timestamp.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t cell_id = drain_cells_[i];
    CellOutcome& out = drain_outcomes_[i];
    if (cells_[cell_id].fill_seq != out.fill_seq) {
      // An earlier commit's callback demoted/promoted a flow in this cell,
      // and fill_cell_now already committed fresh rates, a fresh completion
      // event, and fresh ghost shares. Committing this outcome would cancel
      // that event and replay stale shares — keep only its ledger deltas,
      // which the inline fill cannot have banked (no sim time passed since
      // our fill, so its accrual window was empty).
      segment_bytes_ += out.segment_bytes;
      clamped_bytes_ += out.clamped_bytes;
      negative_residuals_ += out.negative_residuals;
      if (on_rate_share) {
        // The inline fill records ghost changes against the arena values OUR
        // fill wrote — which the consumer never heard — so a share this
        // outcome moved may look "unchanged" to it and go unpublished.
        // Replay the CURRENT arena share (never this outcome's stale value)
        // for each ghost we touched, skipping flows the callbacks meanwhile
        // promoted or finished.
        for (const auto& [id, stale_rate] : out.ghost_changes) {
          (void)stale_rate;
          if (arena_.mode(id) == FlowMode::Packet) on_rate_share(id, arena_.rate_bps(id));
        }
      }
      continue;
    }
    commit_outcome(cell_id, out);
  }
}

// --- completion -------------------------------------------------------------

void FluidEngine::fire(std::uint32_t cell_id) {
  Cell& c = cells_[cell_id];
  accrue_now(c);

  // Complete every fluid flow that reached its demand (ties complete
  // together, in SessionId order — the member list is sorted). The scratch
  // buffer is engine-level: fire() runs hundreds of thousands of times in a
  // 1M-UE run and must not heap-allocate per completion.
  scratch_done_.clear();
  for (SessionId id : c.flows) {
    if (arena_.mode(id) != FlowMode::Fluid) continue;
    if (arena_.residual_bytes(id) <= kCompleteEpsBytes) scratch_done_.push_back(id);
  }
  for (SessionId id : scratch_done_) {
    // The sub-epsilon remainder is the final segment, delivered now.
    segment_bytes_ += arena_.residual_bytes(id);
    arena_.delivered_bytes(id) = arena_.demand_bytes(id);
    arena_.mode(id) = FlowMode::Done;
    arena_.rate_bps(id) = 0.0;
    arena_.finish_ns(id) = sim_.now().nanos();
    remove_member(c, id);
    --active_fluid_;
    ++completions_;
  }
  mark_dirty(cell_id);
  if (on_complete) {
    // on_complete may start/demote/handover flows; those marks coalesce
    // into the drain already scheduled above.
    for (SessionId id : scratch_done_) on_complete(id);
  }
}

// --- membership -------------------------------------------------------------

void FluidEngine::insert_member(Cell& c, SessionId id) {
  auto it = std::lower_bound(c.flows.begin(), c.flows.end(), id);
  c.flows.insert(it, id);
  insert_order(c, id, order_key(id));
}

void FluidEngine::remove_member(Cell& c, SessionId id) {
  auto it = std::lower_bound(c.flows.begin(), c.flows.end(), id);
  assert(it != c.flows.end() && *it == id);
  c.flows.erase(it);
  remove_order(c, id, order_key(id));
}

void FluidEngine::insert_order(Cell& c, SessionId id, double key) {
  auto it = std::lower_bound(c.order.begin(), c.order.end(), id,
                             [&](SessionId other, SessionId target) {
                               const double ko = order_key(other);
                               if (ko != key) return ko < key;
                               return other < target;
                             });
  c.order.insert(it, id);
}

void FluidEngine::remove_order(Cell& c, SessionId id, double key) {
  auto it = std::lower_bound(c.order.begin(), c.order.end(), id,
                             [&](SessionId other, SessionId target) {
                               const double ko = order_key(other);
                               if (ko != key) return ko < key;
                               return other < target;
                             });
  assert(it != c.order.end() && *it == id);
  c.order.erase(it);
}

}  // namespace cb::traffic
