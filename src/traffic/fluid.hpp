// Flow-level ("fluid") traffic engine — the fast path of the hybrid
// fluid/packet model (DESIGN.md §11, §13).
//
// Steady-state bulk transfers are not worth packet-by-packet simulation: a
// TCP flow that has converged inside a stable cell progresses at its fair
// share of the cell's scheduler capacity, and nothing interesting happens
// between rate-change points. The FluidEngine represents each such flow as
// a rate share and advances delivered bytes analytically, scheduling sim
// events ONLY where a rate can change:
//
//   - a flow arriving or finishing in a cell,
//   - a handover moving a flow between cells,
//   - a shaper/scheduler capacity transition (rate-policy resample, fault),
//   - a flow demoting to / promoting from packet fidelity.
//
// Within a cell the allocation is weighted max-min fairness under per-flow
// caps (the bearer shaper / QoS MBR), computed by one water-filling pass.
// Flows demoted to packet mode stay in the cell as "ghost" members: they
// keep consuming their share in the allocation (the packet lane's link rate
// mirrors it via on_rate_share), so cell capacity is conserved across the
// fidelity boundary; only their byte progress comes from real packets.
//
// Reallocation is INCREMENTAL (DESIGN.md §13): each cell persistently keeps
// its members sorted by cap/weight (the water-filling visit order), so a
// join/leave/cap-change is O(log n) position bookkeeping and a reallocation
// is one linear fill pass — no per-event sort. Mutations do not reallocate
// inline; they mark the cell dirty and a zero-delay "drain" event at the
// same timestamp water-fills every dirty cell once, so a burst of churn at
// one sim instant (an epoch of shaper resamples, a fault demoting a whole
// cell) coalesces into one fill per cell instead of one per mutation.
// demote()/promote() fill their cell immediately instead (callers read the
// ghost share synchronously); rates are unchanged either way because no sim
// time passes between a mutation and its drain.
//
// The drain is also the PARALLEL phase: with fill_threads > 1 the dirty
// cells of one timestamp are water-filled on a worker pool. Cells are
// disjoint (a session belongs to exactly one cell), workers only write
// their own cell's arena rows and a per-cell outcome buffer, and the main
// thread commits outcomes — ledger sums, completion-event scheduling,
// on_rate_share callbacks — strictly in ascending cell-id order. Any thread
// count therefore produces bit-identical results to the serial engine.
// Commit-time callbacks (on_rate_share / on_complete) may re-enter the
// engine synchronously: mutations that mark_dirty coalesce into a fresh
// drain at the same timestamp, and demote()/promote() fill their cell
// inline — if that cell's outcome from the CURRENT drain has not committed
// yet, the inline fill supersedes it (per-cell fill sequence numbers) and
// only its ledger deltas are kept, never its stale rates, completion event,
// or ghost shares.
//
// Byte accounting is per-cell and lazy: each cell remembers when it last
// accrued, and any mutation (or a completion event) first banks
// rate × elapsed into every fluid flow of that cell. Accrual clamps at a
// flow's demand, so delivered never exceeds demand and residuals never go
// negative — the `fluid.conservation` invariant checks exactly this ledger.
//
// Determinism: no RNG, flow lists kept in ascending SessionId order (with
// the fill order keyed by (cap/weight, SessionId)), all arithmetic in
// double precision with a fixed iteration and reduction order — same-seed
// runs produce bit-identical delivered/billed totals at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "traffic/arena.hpp"

namespace cb::traffic {

class FluidEngine {
 public:
  /// `fill_threads` sizes the drain-phase worker pool; 1 (the default, and
  /// what tier-1 tests use) runs every fill on the calling thread. Results
  /// are bit-identical at any thread count.
  FluidEngine(sim::Simulator& sim, SessionArena& arena, unsigned fill_threads = 1);
  ~FluidEngine();

  FluidEngine(const FluidEngine&) = delete;
  FluidEngine& operator=(const FluidEngine&) = delete;

  // --- topology -------------------------------------------------------------
  /// Add a cell with the given downlink scheduler capacity; returns its id.
  std::uint32_t add_cell(double capacity_bps);
  /// Shaper/scheduler transition: marks the cell for reallocation at this
  /// timestamp (accrual up to now still happens at the old per-flow rates).
  void set_cell_capacity(std::uint32_t cell, double capacity_bps);
  double cell_capacity(std::uint32_t cell) const { return cells_[cell].capacity_bps; }
  std::size_t n_cells() const { return cells_.size(); }
  unsigned fill_threads() const { return threads_; }

  // --- flow lifecycle -------------------------------------------------------
  /// Start a fluid flow of `bytes` on session `id` (arena supplies cell,
  /// weight, and cap). The session must be Idle. The cell's shares are
  /// recomputed by the drain at this timestamp (or an explicit flush()).
  void start_flow(SessionId id, double bytes);
  /// Move a flow (fluid or ghost/packet) to `new_cell` — a rate-change point
  /// for both cells. Both cells accrue before the membership moves.
  void handover(SessionId id, std::uint32_t new_cell);
  /// Tighten/relax one flow's bearer cap (0 = uncapped). Repositions the
  /// flow in the cell's persistent fill order and marks the cell dirty.
  void set_flow_cap(SessionId id, double cap_bps);

  /// Demote a fluid flow to packet fidelity: banks its bytes, marks it
  /// Packet, keeps it in the cell as a ghost (its share keeps being
  /// allocated and is published through on_rate_share). Fills the cell
  /// immediately — the caller reads the ghost share synchronously. Returns
  /// the residual bytes the packet lane must transfer.
  double demote(SessionId id);
  /// Promote a packet flow back to fluid. The caller must have recorded all
  /// packet-delivered bytes in arena.delivered_bytes before calling —
  /// bytes-in-flight are conserved because the residual is re-derived from
  /// the arena ledger, never guessed. Fills the cell immediately.
  void promote(SessionId id);
  /// Remove a flow that completed while in packet mode (ghost leaves cell).
  void finish_packet_flow(SessionId id);

  /// Fired when a fluid flow's delivered bytes reach its demand. The arena
  /// already shows mode == Done and finish_ns set.
  std::function<void(SessionId)> on_complete;
  /// Fired when a ghost (packet-mode) flow's allocated share changes; hybrid
  /// lanes mirror the share onto their bottleneck link. Replayed on the main
  /// thread in ascending cell-id order after a parallel drain.
  std::function<void(SessionId, double rate_bps)> on_rate_share;

  // --- sweeps ---------------------------------------------------------------
  /// Bank rate × elapsed for every cell up to now (billing sweeps call this
  /// before reading delivered totals). Does not change any rate.
  void accrue_all();
  /// Water-fill every dirty cell now instead of waiting for the drain event
  /// at this timestamp. Unit tests and synchronous callers use this; inside
  /// a running simulation the zero-delay drain event makes it unnecessary.
  void flush();

  // --- ledger / introspection (fluid.conservation reads these) -------------
  /// Σ of all rate × interval segments ever banked into delivered bytes.
  double segment_bytes() const { return segment_bytes_; }
  /// Accruals that had to clamp at a flow's demand would otherwise overshoot
  /// by at most rate × (event guard); the clamped remainder is counted here
  /// so segment_bytes + nothing is lost (diagnostic, stays tiny).
  double clamped_bytes() const { return clamped_bytes_; }
  /// Times a residual was observed negative — must stay 0.
  std::uint64_t negative_residuals() const { return negative_residuals_; }
  /// Water-filling passes executed (== coalesced rate-change points).
  std::uint64_t rate_events() const { return rate_events_; }
  /// Fluid-mode completions so far.
  std::uint64_t completions() const { return completions_; }
  std::uint64_t demotions() const { return demotions_; }
  std::uint64_t promotions() const { return promotions_; }
  /// Flows currently progressed by the engine (fluid only, ghosts excluded).
  std::size_t active_fluid_flows() const { return active_fluid_; }

 private:
  struct Cell {
    double capacity_bps = 0.0;
    /// Members in ascending SessionId order (accrual / completion scans);
    /// fluid flows and packet ghosts.
    std::vector<SessionId> flows;
    /// The same members in ascending (cap/weight, SessionId) order — the
    /// persistent water-filling visit order, maintained incrementally.
    std::vector<SessionId> order;
    TimePoint last_accrual;
    sim::EventHandle next_completion;
    /// Bumped by every fill_cell_now (demote/promote/flush path). A drain
    /// outcome filled under an older value was superseded by an inline fill
    /// fired from a commit-time callback; the commit loop then keeps only
    /// its ledger deltas (see drain()).
    std::uint64_t fill_seq = 0;
    bool dirty = false;   // needs a fill at the current timestamp
    bool queued = false;  // present in drain_queue_
  };

  /// Everything one fill produces besides the arena rate writes. Workers
  /// fill these in parallel; the main thread commits them in cell-id order.
  struct CellOutcome {
    double segment_bytes = 0.0;
    double clamped_bytes = 0.0;
    std::uint64_t negative_residuals = 0;
    /// Earliest fluid completion at the new rates (seconds; infinity = none).
    double min_completion_s = 0.0;
    /// Ghost flows whose published share changed, in fill order.
    std::vector<std::pair<SessionId, double>> ghost_changes;
    /// The cell's fill_seq when this outcome was filled; a mismatch at
    /// commit time means an inline fill superseded it.
    std::uint64_t fill_seq = 0;
    void reset();
  };

  class FillPool;

  /// Bank rate × (now - last_accrual) into every fluid flow of the cell,
  /// accumulating ledger deltas into `out` (thread-safe per cell).
  void accrue_cell(Cell& c, CellOutcome& out);
  /// Main-thread accrual that folds the deltas straight into the ledger.
  void accrue_now(Cell& c);
  /// accrue + one linear water-filling pass over the persistent order.
  /// Worker-safe: writes only this cell's arena rows and `out`.
  void fill_cell(Cell& c, CellOutcome& out);
  /// Fold a fill's outcome into the ledger, reschedule the cell's
  /// completion event, and replay its ghost-share callbacks. Main thread
  /// only; called in ascending cell-id order after a drain.
  void commit_outcome(std::uint32_t cell_id, CellOutcome& out);
  /// Immediate fill of one cell (demote/promote and flush paths).
  void fill_cell_now(std::uint32_t cell_id);
  /// Mark a cell for reallocation and ensure a drain event is pending.
  void mark_dirty(std::uint32_t cell_id);
  /// Water-fill every dirty cell (parallel when threads_ > 1), then commit
  /// outcomes in ascending cell-id order.
  void drain();
  /// Completion event handler for one cell.
  void fire(std::uint32_t cell);

  /// Water-filling visit key: ascending cap/weight, uncapped (+inf) last.
  double order_key(SessionId id) const;
  void insert_member(Cell& c, SessionId id);
  void remove_member(Cell& c, SessionId id);
  void insert_order(Cell& c, SessionId id, double key);
  void remove_order(Cell& c, SessionId id, double key);

  sim::Simulator& sim_;
  SessionArena& arena_;
  std::vector<Cell> cells_;
  unsigned threads_ = 1;
  std::unique_ptr<FillPool> pool_;

  // Dirty-cell epoch state: cells queued since the last drain, the pending
  // zero-delay drain event, and reusable per-drain scratch.
  std::vector<std::uint32_t> drain_queue_;
  bool drain_scheduled_ = false;
  sim::EventHandle drain_event_;
  std::vector<std::uint32_t> drain_cells_;   // this drain's cells, ascending
  std::vector<CellOutcome> drain_outcomes_;  // slot-per-cell, reused
  // Completion scratch: reused across fire() calls so a cell completing
  // flows hundreds of thousands of times never heap-allocates. on_complete
  // handlers must not re-enter fire() (they cannot: fire only runs as a sim
  // event), and engine mutations they make use their own local outcome.
  std::vector<SessionId> scratch_done_;

  double segment_bytes_ = 0.0;
  double clamped_bytes_ = 0.0;
  std::uint64_t negative_residuals_ = 0;
  std::uint64_t rate_events_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t promotions_ = 0;
  std::size_t active_fluid_ = 0;
};

}  // namespace cb::traffic
