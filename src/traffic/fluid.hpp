// Flow-level ("fluid") traffic engine — the fast path of the hybrid
// fluid/packet model (DESIGN.md §11).
//
// Steady-state bulk transfers are not worth packet-by-packet simulation: a
// TCP flow that has converged inside a stable cell progresses at its fair
// share of the cell's scheduler capacity, and nothing interesting happens
// between rate-change points. The FluidEngine represents each such flow as
// a rate share and advances delivered bytes analytically, scheduling sim
// events ONLY where a rate can change:
//
//   - a flow arriving or finishing in a cell,
//   - a handover moving a flow between cells,
//   - a shaper/scheduler capacity transition (rate-policy resample, fault),
//   - a flow demoting to / promoting from packet fidelity.
//
// Within a cell the allocation is weighted max-min fairness under per-flow
// caps (the bearer shaper / QoS MBR), computed by one water-filling pass.
// Flows demoted to packet mode stay in the cell as "ghost" members: they
// keep consuming their share in the allocation (the packet lane's link rate
// mirrors it via on_rate_share), so cell capacity is conserved across the
// fidelity boundary; only their byte progress comes from real packets.
//
// Byte accounting is per-cell and lazy: each cell remembers when it last
// accrued, and any mutation (or a completion event) first banks
// rate × elapsed into every fluid flow of that cell. Accrual clamps at a
// flow's demand, so delivered never exceeds demand and residuals never go
// negative — the `fluid.conservation` invariant checks exactly this ledger.
//
// Determinism: no RNG, flow lists kept in ascending SessionId order, all
// arithmetic in double precision with a fixed iteration order — same-seed
// runs produce bit-identical delivered/billed totals.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "traffic/arena.hpp"

namespace cb::traffic {

class FluidEngine {
 public:
  FluidEngine(sim::Simulator& sim, SessionArena& arena);

  // --- topology -------------------------------------------------------------
  /// Add a cell with the given downlink scheduler capacity; returns its id.
  std::uint32_t add_cell(double capacity_bps);
  /// Shaper/scheduler transition: retime the cell, then reallocate.
  void set_cell_capacity(std::uint32_t cell, double capacity_bps);
  double cell_capacity(std::uint32_t cell) const { return cells_[cell].capacity_bps; }
  std::size_t n_cells() const { return cells_.size(); }

  // --- flow lifecycle -------------------------------------------------------
  /// Start a fluid flow of `bytes` on session `id` (arena supplies cell,
  /// weight, and cap). The session must be Idle.
  void start_flow(SessionId id, double bytes);
  /// Move a flow (fluid or ghost/packet) to `new_cell` — a rate-change point
  /// for both cells.
  void handover(SessionId id, std::uint32_t new_cell);
  /// Tighten/relax one flow's bearer cap (0 = uncapped).
  void set_flow_cap(SessionId id, double cap_bps);

  /// Demote a fluid flow to packet fidelity: banks its bytes, marks it
  /// Packet, keeps it in the cell as a ghost (its share keeps being
  /// allocated and is published through on_rate_share). Returns the residual
  /// bytes the packet lane must transfer.
  double demote(SessionId id);
  /// Promote a packet flow back to fluid. The caller must have recorded all
  /// packet-delivered bytes in arena.delivered_bytes before calling —
  /// bytes-in-flight are conserved because the residual is re-derived from
  /// the arena ledger, never guessed.
  void promote(SessionId id);
  /// Remove a flow that completed while in packet mode (ghost leaves cell).
  void finish_packet_flow(SessionId id);

  /// Fired when a fluid flow's delivered bytes reach its demand. The arena
  /// already shows mode == Done and finish_ns set.
  std::function<void(SessionId)> on_complete;
  /// Fired when a ghost (packet-mode) flow's allocated share changes; hybrid
  /// lanes mirror the share onto their bottleneck link.
  std::function<void(SessionId, double rate_bps)> on_rate_share;

  // --- sweeps ---------------------------------------------------------------
  /// Bank rate × elapsed for every cell up to now (billing sweeps call this
  /// before reading delivered totals). Does not change any rate.
  void accrue_all();

  // --- ledger / introspection (fluid.conservation reads these) -------------
  /// Σ of all rate × interval segments ever banked into delivered bytes.
  double segment_bytes() const { return segment_bytes_; }
  /// Accruals that had to clamp at a flow's demand would otherwise overshoot
  /// by at most rate × (event guard); the clamped remainder is counted here
  /// so segment_bytes + nothing is lost (diagnostic, stays tiny).
  double clamped_bytes() const { return clamped_bytes_; }
  /// Times a residual was observed negative — must stay 0.
  std::uint64_t negative_residuals() const { return negative_residuals_; }
  /// Share recomputations (== rate-change points handled).
  std::uint64_t rate_events() const { return rate_events_; }
  /// Fluid-mode completions so far.
  std::uint64_t completions() const { return completions_; }
  std::uint64_t demotions() const { return demotions_; }
  std::uint64_t promotions() const { return promotions_; }
  /// Flows currently progressed by the engine (fluid only, ghosts excluded).
  std::size_t active_fluid_flows() const { return active_fluid_; }

 private:
  struct Cell {
    double capacity_bps = 0.0;
    /// Members in ascending SessionId order; fluid flows and packet ghosts.
    std::vector<SessionId> flows;
    TimePoint last_accrual;
    sim::EventHandle next_completion;
  };

  /// Bank rate × (now - last_accrual) into every fluid flow of the cell.
  void accrue_cell(Cell& c);
  /// accrue + recompute the max-min allocation + reschedule the cell's next
  /// completion event. Every rate-change point funnels through here.
  void reallocate(std::uint32_t cell);
  /// Completion event handler for one cell.
  void fire(std::uint32_t cell);
  void remove_member(Cell& c, SessionId id);
  void insert_member(Cell& c, SessionId id);

  sim::Simulator& sim_;
  SessionArena& arena_;
  std::vector<Cell> cells_;
  // Scratch for the water-filling pass (order indices), reused across calls.
  std::vector<std::uint32_t> scratch_order_;

  double segment_bytes_ = 0.0;
  double clamped_bytes_ = 0.0;
  std::uint64_t negative_residuals_ = 0;
  std::uint64_t rate_events_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t promotions_ = 0;
  std::size_t active_fluid_ = 0;
};

}  // namespace cb::traffic
