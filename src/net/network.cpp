#include "net/network.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace cb::net {

Node* Network::add_node(const std::string& name) {
  nodes_.push_back(std::make_unique<Node>(sim_, name));
  return nodes_.back().get();
}

Link* Network::connect(Node* a, Node* b, const LinkParams& params) {
  return connect(a, b, params, params);
}

Link* Network::connect(Node* a, Node* b, const LinkParams& a_to_b, const LinkParams& b_to_a) {
  links_.push_back(std::make_unique<Link>(sim_, a, b, a_to_b, b_to_a));
  return links_.back().get();
}

void Network::register_address(Ipv4Addr addr, Node* owner, bool proxy_only) {
  if (!addr.valid()) throw std::invalid_argument("register_address: invalid");
  address_owner_[addr] = owner;
  if (!proxy_only) owner->add_address(addr);
}

void Network::unregister_address(Ipv4Addr addr) {
  if (auto it = address_owner_.find(addr); it != address_owner_.end()) {
    it->second->remove_address(addr);
    address_owner_.erase(it);
  }
}

Node* Network::owner_of(Ipv4Addr addr) const {
  auto it = address_owner_.find(addr);
  return it == address_owner_.end() ? nullptr : it->second;
}

Ipv4Addr Network::alloc_address(std::uint8_t subnet_high8) {
  std::uint32_t& next = next_host_[subnet_high8];
  ++next;
  if (next >= (1u << 24)) throw std::runtime_error("alloc_address: subnet exhausted");
  return Ipv4Addr(static_cast<std::uint32_t>(subnet_high8) << 24 | next);
}

void Network::recompute_routes() {
  // Dijkstra from each node over up links; weight = propagation delay + a
  // tiny hop cost so zero-delay meshes still prefer fewer hops.
  std::unordered_map<const Node*, std::size_t> index;
  for (std::size_t i = 0; i < nodes_.size(); ++i) index[nodes_[i].get()] = i;

  const std::size_t n = nodes_.size();
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<Link*> first_hop(n, nullptr);
    using QEntry = std::pair<double, std::size_t>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
    dist[src] = 0.0;
    pq.push({0.0, src});

    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (Link* link : nodes_[u]->links()) {
        if (!link->is_up()) continue;
        Node* peer = link->peer(nodes_[u].get());
        auto pit = index.find(peer);
        if (pit == index.end()) continue;
        const std::size_t v = pit->second;
        const double w = link->params(nodes_[u].get()).delay.to_seconds() + 1e-9;
        if (dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          first_hop[v] = (u == src) ? link : first_hop[u];
          pq.push({dist[v], v});
        }
      }
    }

    Node* source = nodes_[src].get();
    source->clear_host_routes();
    for (const auto& [addr, owner] : address_owner_) {
      if (owner == source) continue;
      auto oit = index.find(owner);
      if (oit == index.end()) continue;
      if (Link* hop = first_hop[oit->second]) source->set_route(addr, hop);
    }
  }
}

}  // namespace cb::net
