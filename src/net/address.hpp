// IPv4-style addressing for the simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace cb::net {

/// A 32-bit network address. Value type; 0 means "unassigned" (the paper's
/// 0.0.0.0 state after a bTelco detach).
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) : v_(v) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : v_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
           static_cast<std::uint32_t>(c) << 8 | d) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr bool valid() const { return v_ != 0; }
  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  std::string to_string() const;

 private:
  std::uint32_t v_ = 0;
};

/// Transport endpoint (address, port).
struct EndPoint {
  Ipv4Addr addr;
  std::uint16_t port = 0;

  constexpr auto operator<=>(const EndPoint&) const = default;
  std::string to_string() const;
};

}  // namespace cb::net

template <>
struct std::hash<cb::net::Ipv4Addr> {
  std::size_t operator()(const cb::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<cb::net::EndPoint> {
  std::size_t operator()(const cb::net::EndPoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        static_cast<std::uint64_t>(e.addr.value()) << 16 | e.port);
  }
};
