// A network node: owns addresses, forwards packets, and hosts the L4 stack
// demux (UDP handlers and the TCP dispatcher from src/transport).
//
// Gateways (PGW, bTelco AGW) additionally use proxy addresses and forward
// hooks to anchor and meter subscriber traffic.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace cb::net {

class Node {
 public:
  Node(sim::Simulator& sim, std::string name);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }

  /// Fault injection: a down node drops everything — packets it would send,
  /// receive, or forward — until brought back up. Addressing, routes, and
  /// bound handlers survive the outage (the process is gone, the config
  /// isn't).
  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

  // --- Addressing -----------------------------------------------------
  void add_address(Ipv4Addr addr);
  void remove_address(Ipv4Addr addr);
  bool has_address(Ipv4Addr addr) const;
  /// Any one local address (first added), or the invalid address if none.
  Ipv4Addr primary_address() const;
  const std::vector<Ipv4Addr>& addresses() const { return addresses_; }

  /// Anchor an address here without making it local: arriving packets go to
  /// `handler` instead of the local stack (a PGW anchoring a UE address).
  void add_proxy_address(Ipv4Addr addr, std::function<void(Packet&&)> handler);
  void remove_proxy_address(Ipv4Addr addr);

  // --- Forwarding -----------------------------------------------------
  void attach_link(Link* link);
  const std::vector<Link*>& links() const { return links_; }

  void set_route(Ipv4Addr dst, Link* via);
  void clear_route(Ipv4Addr dst);
  void set_default_route(Link* via);
  /// Remove everything, including the default route.
  void clear_routes();
  /// Remove per-destination routes but keep the default route (used by the
  /// routing oracle so host-configured defaults survive recomputation).
  void clear_host_routes();

  /// Inspect/steer transit packets before routing. Return true if the hook
  /// consumed the packet (it forwarded or dropped it itself).
  void set_forward_hook(std::function<bool(Packet&)> hook);

  /// Send a packet originating at this node.
  void send(Packet packet);
  /// Called by links when a packet arrives here.
  void deliver(Packet packet);

  // --- Host stack -----------------------------------------------------
  using UdpHandler = std::function<void(const Packet&)>;
  /// Register a UDP receiver; throws if the port is taken.
  void bind_udp(std::uint16_t port, UdpHandler handler);
  void unbind_udp(std::uint16_t port);
  /// Ephemeral port allocator (49152+).
  std::uint16_t alloc_port();

  /// All Proto::Tcp packets addressed to this node go to one dispatcher
  /// (the transport layer's segment demux).
  void set_tcp_demux(std::function<void(Packet&&)> demux);

  /// Diagnostics.
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t delivered_local() const { return delivered_local_; }
  std::uint64_t dropped_no_route() const { return dropped_no_route_; }
  std::uint64_t dropped_down() const { return dropped_down_; }

 private:
  void forward(Packet&& packet);

  sim::Simulator& sim_;
  std::string name_;
  std::vector<Ipv4Addr> addresses_;
  std::unordered_map<Ipv4Addr, std::function<void(Packet&&)>> proxy_addresses_;
  std::vector<Link*> links_;
  std::unordered_map<Ipv4Addr, Link*> routes_;
  Link* default_route_ = nullptr;
  std::function<bool(Packet&)> forward_hook_;
  std::unordered_map<std::uint16_t, UdpHandler> udp_handlers_;
  std::function<void(Packet&&)> tcp_demux_;
  std::uint16_t next_port_ = 49152;
  bool up_ = true;
  std::uint64_t forwarded_ = 0;
  std::uint64_t delivered_local_ = 0;
  std::uint64_t dropped_no_route_ = 0;
  std::uint64_t dropped_down_ = 0;
};

}  // namespace cb::net
