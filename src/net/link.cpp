#include "net/link.hpp"

#include <stdexcept>

#include "net/node.hpp"

namespace cb::net {

Link::Link(sim::Simulator& sim, Node* a, Node* b, LinkParams a_to_b, LinkParams b_to_a)
    : sim_(sim), a_(a), b_(b), rng_(sim.rng().fork(0x11E4)) {
  ab_.params = a_to_b;
  ba_.params = b_to_a;
  a_->attach_link(this);
  b_->attach_link(this);
}

Node* Link::peer(const Node* n) const {
  if (n == a_) return b_;
  if (n == b_) return a_;
  throw std::logic_error("Link::peer: node not on this link");
}

Link::Direction& Link::dir_from(const Node* from) {
  if (from == a_) return ab_;
  if (from == b_) return ba_;
  throw std::logic_error("Link: node not on this link");
}

const Link::Direction& Link::dir_from(const Node* from) const {
  return const_cast<Link*>(this)->dir_from(from);
}

void Link::set_params(Node* from, const LinkParams& params) {
  dir_from(from).params = params;
}

const LinkParams& Link::params(Node* from) const { return dir_from(from).params; }

void Link::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up) {
    for (Direction* d : {&ab_, &ba_}) {
      drops_ += d->queue.size();
      d->queue.clear();
      d->queued_bytes = 0;
      // A transmission in progress is abandoned; the completion event will
      // notice the link is down and deliver nothing.
    }
  }
}

void Link::send(Node* from, Packet packet) {
  if (!up_) {
    ++drops_;
    return;
  }
  Direction& d = dir_from(from);
  if (d.queued_bytes + packet.wire_size() > d.params.queue_bytes) {
    ++drops_;
    return;
  }
  d.queued_bytes += packet.wire_size();
  d.queue.push_back(std::move(packet));
  if (!d.transmitting) start_transmit(d, peer(from));
}

void Link::start_transmit(Direction& d, Node* to) {
  if (d.queue.empty()) {
    d.transmitting = false;
    return;
  }
  d.transmitting = true;
  Packet packet = std::move(d.queue.front());
  d.queue.pop_front();
  d.queued_bytes -= packet.wire_size();

  const Duration serialization =
      d.params.rate_bps > 0.0
          ? Duration::seconds(static_cast<double>(packet.wire_size()) * 8.0 / d.params.rate_bps)
          : Duration::zero();

  // After serialization finishes, the next packet can start while this one
  // propagates.
  d.counters.sent_packets += 1;
  d.counters.sent_bytes += packet.wire_size();

  sim_.schedule(serialization, [this, &d, to, packet = std::move(packet)]() mutable {
    if (up_) {
      const Duration propagation = d.params.delay;
      if (rng_.chance(d.params.loss)) {
        ++drops_;
      } else {
        // The corruption roll only consumes randomness when the fault is
        // armed, so enabling it never perturbs other links' loss streams.
        if (d.params.corrupt > 0.0 && !packet.payload.empty() &&
            rng_.chance(d.params.corrupt)) {
          // mutate() clones the (shared) buffer so other holders of this
          // payload — e.g. a retransmit copy — keep the clean bytes.
          packet.payload.mutate()[rng_.next_below(packet.payload.size())] ^= 0x5A;
          ++corrupted_;
        }
        ++delivered_;
        d.counters.delivered_packets += 1;
        d.counters.delivered_bytes += packet.wire_size();
        sim_.schedule(propagation, [this, to, packet = std::move(packet)]() mutable {
          if (up_) to->deliver(std::move(packet));
        });
      }
    }
    start_transmit(d, to);
  });
}

}  // namespace cb::net
