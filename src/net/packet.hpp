// The unit of data exchanged by simulated nodes.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/cow_bytes.hpp"
#include "net/address.hpp"

namespace cb::net {

/// L4 protocol selector for host-stack demux.
enum class Proto : std::uint8_t { Udp, Tcp };

/// A network packet. The payload is the serialized L4 content (UDP datagram
/// body or a serialized TCP segment); `overhead` accounts for L2/L3 headers
/// in link-time and byte-accounting computations. Payloads are
/// copy-on-write: copying a Packet shares the buffer, so fan-out and
/// link-hop copies are O(1) (see cow_bytes.hpp).
struct Packet {
  EndPoint src;
  EndPoint dst;
  Proto proto = Proto::Udp;
  CowBytes payload;
  std::uint8_t ttl = 64;
  std::size_t overhead = 40;

  /// Bytes this packet occupies on a link.
  std::size_t wire_size() const { return payload.size() + overhead; }
};

}  // namespace cb::net
