// Topology manager: owns nodes and links, maps addresses to owner nodes,
// and computes static shortest-path routes (Dijkstra over link delay).
//
// Acts as the simulation's routing oracle: after any topology or addressing
// change, call recompute_routes() and every node gets fresh host routes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace cb::net {

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a node owned by this network.
  Node* add_node(const std::string& name);

  /// Connect two nodes with symmetric parameters.
  Link* connect(Node* a, Node* b, const LinkParams& params);
  /// Connect with per-direction parameters.
  Link* connect(Node* a, Node* b, const LinkParams& a_to_b, const LinkParams& b_to_a);

  /// Declare that `addr` is reachable at `owner` (also adds it as a local
  /// address there unless `proxy_only`).
  void register_address(Ipv4Addr addr, Node* owner, bool proxy_only = false);
  void unregister_address(Ipv4Addr addr);
  Node* owner_of(Ipv4Addr addr) const;

  /// Allocate a fresh unique address in `subnet_high8.x.y.z` order.
  Ipv4Addr alloc_address(std::uint8_t subnet_high8);

  /// Rebuild every node's route table from current link state.
  void recompute_routes();

  sim::Simulator& simulator() { return sim_; }
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<Ipv4Addr, Node*> address_owner_;
  std::unordered_map<std::uint8_t, std::uint32_t> next_host_;
};

}  // namespace cb::net
