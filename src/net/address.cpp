#include "net/address.hpp"

#include <cstdio>

namespace cb::net {

std::string Ipv4Addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", v_ >> 24 & 0xFF, v_ >> 16 & 0xFF,
                v_ >> 8 & 0xFF, v_ & 0xFF);
  return buf;
}

std::string EndPoint::to_string() const {
  return addr.to_string() + ":" + std::to_string(port);
}

}  // namespace cb::net
