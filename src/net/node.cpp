#include "net/node.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace cb::net {

Node::Node(sim::Simulator& sim, std::string name) : sim_(sim), name_(std::move(name)) {}

void Node::add_address(Ipv4Addr addr) {
  if (!addr.valid()) throw std::invalid_argument("Node: invalid address");
  if (!has_address(addr)) addresses_.push_back(addr);
}

void Node::remove_address(Ipv4Addr addr) {
  addresses_.erase(std::remove(addresses_.begin(), addresses_.end(), addr), addresses_.end());
}

bool Node::has_address(Ipv4Addr addr) const {
  return std::find(addresses_.begin(), addresses_.end(), addr) != addresses_.end();
}

Ipv4Addr Node::primary_address() const {
  return addresses_.empty() ? Ipv4Addr{} : addresses_.front();
}

void Node::add_proxy_address(Ipv4Addr addr, std::function<void(Packet&&)> handler) {
  proxy_addresses_[addr] = std::move(handler);
}

void Node::remove_proxy_address(Ipv4Addr addr) { proxy_addresses_.erase(addr); }

void Node::attach_link(Link* link) { links_.push_back(link); }

void Node::set_route(Ipv4Addr dst, Link* via) { routes_[dst] = via; }

void Node::clear_route(Ipv4Addr dst) { routes_.erase(dst); }

void Node::set_default_route(Link* via) { default_route_ = via; }

void Node::clear_routes() {
  routes_.clear();
  default_route_ = nullptr;
}

void Node::clear_host_routes() { routes_.clear(); }

void Node::set_forward_hook(std::function<bool(Packet&)> hook) {
  forward_hook_ = std::move(hook);
}

void Node::send(Packet packet) {
  if (!up_) {
    ++dropped_down_;
    return;
  }
  if (!packet.src.addr.valid()) packet.src.addr = primary_address();
  deliver(std::move(packet));
}

void Node::deliver(Packet packet) {
  if (!up_) {
    ++dropped_down_;
    return;
  }
  // Proxy-anchored addresses take precedence (gateway user plane).
  if (auto it = proxy_addresses_.find(packet.dst.addr); it != proxy_addresses_.end()) {
    it->second(std::move(packet));
    return;
  }

  if (has_address(packet.dst.addr)) {
    ++delivered_local_;
    switch (packet.proto) {
      case Proto::Udp: {
        auto it = udp_handlers_.find(packet.dst.port);
        if (it != udp_handlers_.end()) it->second(packet);
        break;
      }
      case Proto::Tcp:
        if (tcp_demux_) tcp_demux_(std::move(packet));
        break;
    }
    return;
  }

  forward(std::move(packet));
}

void Node::forward(Packet&& packet) {
  if (packet.ttl == 0) {
    ++dropped_no_route_;
    return;
  }
  --packet.ttl;

  if (forward_hook_ && forward_hook_(packet)) return;

  Link* via = default_route_;
  if (auto it = routes_.find(packet.dst.addr); it != routes_.end()) {
    // A stale host route whose link has gone down (e.g. the radio bearer of
    // a previous attachment) must not shadow a live default route.
    if (it->second->is_up() || via == nullptr) via = it->second;
  }
  if (via == nullptr || !via->is_up()) {
    ++dropped_no_route_;
    CB_LOG(Debug, "net") << name_ << ": no route to " << packet.dst.addr.to_string();
    return;
  }
  ++forwarded_;
  via->send(this, std::move(packet));
}

void Node::bind_udp(std::uint16_t port, UdpHandler handler) {
  if (udp_handlers_.contains(port)) throw std::logic_error("bind_udp: port in use");
  udp_handlers_[port] = std::move(handler);
}

void Node::unbind_udp(std::uint16_t port) { udp_handlers_.erase(port); }

std::uint16_t Node::alloc_port() {
  // Skip ports with UDP binders; TCP port reuse is managed by the transport.
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const std::uint16_t p = next_port_++;
    if (next_port_ < 49152) next_port_ = 49152;
    if (!udp_handlers_.contains(p)) return p;
  }
  throw std::runtime_error("alloc_port: exhausted");
}

void Node::set_tcp_demux(std::function<void(Packet&&)> demux) { tcp_demux_ = std::move(demux); }

}  // namespace cb::net
