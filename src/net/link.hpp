// Bidirectional point-to-point link with per-direction rate, propagation
// delay, random loss, and a drop-tail byte queue.
//
// Links model everything from the radio bearer (rate set by the serving
// cell's scheduler / MNO rate-limit policy) to WAN paths toward EC2 regions.
#pragma once

#include <deque>
#include <functional>

#include "common/time.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace cb::net {

class Node;

/// Transmission characteristics of one link direction.
struct LinkParams {
  /// Bits per second; 0 means "no serialization delay" (infinite rate).
  double rate_bps = 0.0;
  /// One-way propagation delay.
  Duration delay = Duration::zero();
  /// Independent per-packet drop probability, applied at the receiver.
  double loss = 0.0;
  /// Independent per-packet probability that one payload byte is flipped in
  /// flight (fault injection: degraded/noisy paths). The packet still
  /// arrives; receivers must survive the garbage.
  double corrupt = 0.0;
  /// Drop-tail queue capacity in bytes (packets beyond this are dropped).
  std::size_t queue_bytes = 256 * 1024;
};

/// A link between two nodes. Construction attaches it to both.
class Link {
 public:
  Link(sim::Simulator& sim, Node* a, Node* b, LinkParams a_to_b, LinkParams b_to_a);

  /// Enqueue a packet from `from` toward the other endpoint.
  void send(Node* from, Packet packet);

  /// Replace the transmission parameters of the `from` -> peer direction
  /// (queued packets keep flowing under the new parameters).
  void set_params(Node* from, const LinkParams& params);
  const LinkParams& params(Node* from) const;

  /// Administratively enable/disable. Bringing a link down clears queues —
  /// in-flight radio frames are lost on detach, exactly the case MPTCP must
  /// survive.
  void set_up(bool up);
  bool is_up() const { return up_; }

  Node* endpoint_a() const { return a_; }
  Node* endpoint_b() const { return b_; }
  Node* peer(const Node* n) const;

  /// Cumulative drops (queue overflow + random loss), for diagnostics.
  std::uint64_t drops() const { return drops_; }
  std::uint64_t delivered() const { return delivered_; }
  /// Packets delivered with an injected payload corruption.
  std::uint64_t corrupted() const { return corrupted_; }

  /// Per-direction byte/packet counters — the PDCP/RLC-style statistics the
  /// UE baseband meter and the bTelco accounting read.
  struct Counters {
    std::uint64_t sent_packets = 0;
    std::uint64_t sent_bytes = 0;       // entered the link (post-queue)
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;  // survived loss, reached the peer
  };
  const Counters& counters(const Node* from) const { return dir_from(from).counters; }

 private:
  struct Direction {
    LinkParams params;
    std::deque<Packet> queue;
    std::size_t queued_bytes = 0;
    bool transmitting = false;
    Counters counters;
  };

  Direction& dir_from(const Node* from);
  const Direction& dir_from(const Node* from) const;
  void start_transmit(Direction& d, Node* to);

  sim::Simulator& sim_;
  Node* a_;
  Node* b_;
  Direction ab_;
  Direction ba_;
  bool up_ = true;
  std::uint64_t drops_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t corrupted_ = 0;
  Rng rng_;
};

}  // namespace cb::net
