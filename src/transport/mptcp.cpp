#include "transport/mptcp.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace cb::transport {

namespace {

// Record types framed over the subflow byte stream.
enum class Rec : std::uint8_t {
  Cap = 0,         // u64 token — first record of the initial subflow
  Join = 1,        // u64 token — first record of each additional subflow
  Data = 2,        // u64 dseq, u32 len, payload
  Dack = 3,        // u64 cumulative data ack
  RemoveAddr = 4,  // u32 address
  Dfin = 5,        // u64 dseq of EOF
};

constexpr std::size_t kDataHeader = 1 + 8 + 4;

Bytes make_token_record(Rec type, std::uint64_t token) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(token);
  return w.take();
}

Bytes make_dfin(std::uint64_t dseq) { return make_token_record(Rec::Dfin, dseq); }

Bytes make_remove_addr(net::Ipv4Addr addr) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Rec::RemoveAddr));
  w.u32(addr.value());
  return w.take();
}

}  // namespace

// --- MptcpSocket -------------------------------------------------------------

MptcpSocket::MptcpSocket(MptcpStack& stack, Role role, std::uint64_t token,
                         net::EndPoint remote, MptcpConfig config)
    : stack_(stack), role_(role), token_(token), remote_(remote), config_(config) {}

MptcpSocket::~MptcpSocket() {
  address_wait_timer_.cancel();
  path_timeout_timer_.cancel();
  dack_timer_.cancel();
  dfin_rtx_timer_.cancel();
  for (auto& sf : subflows_) {
    if (!sf.tcp) continue;
    sf.tcp->on_data = nullptr;
    sf.tcp->on_closed = nullptr;
    sf.tcp->on_send_space = nullptr;
    sf.tcp->on_connected = nullptr;
    if (!sf.dead) sf.tcp->abort_silent();
  }
}

bool MptcpSocket::connected() const { return established_ && !finished_; }

std::size_t MptcpSocket::subflow_count() const {
  std::size_t n = 0;
  for (const auto& sf : subflows_) n += (sf.established && !sf.dead);
  return n;
}

std::size_t MptcpSocket::send_space() const {
  return config_.send_buffer - send_buffer_.size();
}

std::size_t MptcpSocket::send(BytesView data) {
  if (finished_ || fin_pending_ || fin_sent_) return 0;
  const std::size_t take = std::min(data.size(), send_space());
  send_buffer_.append(data.subspan(0, take));
  try_send();
  return take;
}

void MptcpSocket::close() {
  if (finished_ || fin_pending_ || fin_sent_) return;
  fin_pending_ = true;
  try_send();
}

void MptcpSocket::start_initial_subflow(net::Ipv4Addr local_addr) {
  auto tcp = stack_.tcp().connect(remote_, local_addr);
  subflows_.push_back(Subflow{tcp, {}, false, false});
  const std::size_t index = subflows_.size() - 1;
  attach_subflow_callbacks(index);
  tcp->on_connected = [this, index] {
    Subflow& sf = subflows_[index];
    sf.established = true;
    sf.tcp->send(make_token_record(Rec::Cap, token_));
    established_ = true;
    if (!dack_timer_.pending()) dack_refresh_tick();
    if (on_connected) on_connected();
    try_send();
  };
}

void MptcpSocket::add_client_subflow(net::Ipv4Addr local_addr) {
  obs::inc(obs::counter("mptcp.subflows.opened"));
  obs::trace(stack_.simulator().now(), obs::TraceType::SubflowOpen, token_);
  auto tcp = stack_.tcp().connect(remote_, local_addr);
  subflows_.push_back(Subflow{tcp, {}, false, false});
  const std::size_t index = subflows_.size() - 1;
  attach_subflow_callbacks(index);
  tcp->on_connected = [this, index] {
    Subflow& sf = subflows_[index];
    sf.established = true;
    if (!established_) {
      // The initial subflow died before the connection came up (handover
      // during the handshake): this subflow becomes the initial one.
      sf.tcp->send(make_token_record(Rec::Cap, token_));
      established_ = true;
      pending_remove_ = net::Ipv4Addr{};
      path_timeout_timer_.cancel();
      if (on_connected) on_connected();
      try_send();
      return;
    }
    sf.tcp->send(make_token_record(Rec::Join, token_));
    if (pending_remove_.valid()) {
      sf.tcp->send(make_remove_addr(pending_remove_));
      pending_remove_ = net::Ipv4Addr{};
    }
    path_timeout_timer_.cancel();
    // Go-back over the connection-level buffer: anything the dead subflow
    // had in flight but un-DACKed is resent here; the receiver dedups.
    dseq_nxt_ = dseq_una_;
    if (fin_sent_ && !fin_acked_) {
      fin_sent_ = false;
      fin_pending_ = true;
    }
    try_send();
  };
}

void MptcpSocket::adopt_server_subflow(std::shared_ptr<TcpSocket> tcp, ByteQueue carried) {
  obs::inc(obs::counter("mptcp.subflows.adopted"));
  subflows_.push_back(Subflow{std::move(tcp), std::move(carried), true, false});
  const std::size_t index = subflows_.size() - 1;
  attach_subflow_callbacks(index);
  established_ = true;
  if (!dack_timer_.pending()) dack_refresh_tick();
  path_timeout_timer_.cancel();
  // A JOIN means the peer lost its previous path: resend un-acked data.
  if (subflows_.size() > 1) {
    dseq_nxt_ = dseq_una_;
    if (fin_sent_ && !fin_acked_) {
      fin_sent_ = false;
      fin_pending_ = true;
    }
  }
  parse_records(index);
  if (!finished_) try_send();
}

void MptcpSocket::attach_subflow_callbacks(std::size_t index) {
  TcpSocket& tcp = *subflows_[index].tcp;
  tcp.on_data = [this, index](BytesView data) { on_subflow_data(index, data); };
  tcp.on_closed = [this, index](const std::string& reason) {
    on_subflow_closed(index, reason);
  };
  tcp.on_send_space = [this] { try_send(); };
}

void MptcpSocket::on_subflow_data(std::size_t index, BytesView data) {
  if (subflows_[index].dead) ++stack_.sanity_.data_on_dead_subflow;
  subflows_[index].rx.append(data);
  parse_records(index);
}

void MptcpSocket::parse_records(std::size_t index) {
  for (;;) {
    if (finished_) return;
    ByteQueue& rx = subflows_[index].rx;
    if (rx.size() < 1) return;
    const auto type = static_cast<Rec>(rx.peek(0, 1)[0]);
    switch (type) {
      case Rec::Cap:
      case Rec::Join: {
        if (rx.size() < 9) return;
        rx.pop(9);  // token already consumed by the stack on adoption
        break;
      }
      case Rec::Data: {
        if (rx.size() < kDataHeader) return;
        const Bytes header = rx.peek(0, kDataHeader);
        ByteReader r(header);
        r.u8();
        const std::uint64_t dseq = r.u64();
        const std::uint32_t len = r.u32();
        if (rx.size() < kDataHeader + len) return;
        Bytes payload = rx.peek(kDataHeader, len);
        rx.pop(kDataHeader + len);
        handle_data_record(dseq, std::move(payload));
        break;
      }
      case Rec::Dack: {
        if (rx.size() < 9) return;
        const Bytes header = rx.peek(0, 9);
        ByteReader r(header);
        r.u8();
        const std::uint64_t dack = r.u64();
        rx.pop(9);
        handle_dack(dack);
        break;
      }
      case Rec::RemoveAddr: {
        if (rx.size() < 5) return;
        const Bytes header = rx.peek(0, 5);
        ByteReader r(header);
        r.u8();
        const net::Ipv4Addr addr{r.u32()};
        rx.pop(5);
        handle_remove_addr(addr);
        break;
      }
      case Rec::Dfin: {
        if (rx.size() < 9) return;
        const Bytes header = rx.peek(0, 9);
        ByteReader r(header);
        r.u8();
        peer_fin_ = true;
        peer_fin_dseq_ = r.u64();
        rx.pop(9);
        maybe_deliver_eof();
        break;
      }
      default:
        CB_LOG(Warn, "mptcp") << "protocol error: unknown record type";
        finish("protocol error");
        return;
    }
  }
}

void MptcpSocket::handle_data_record(std::uint64_t dseq, Bytes payload) {
  const std::uint64_t end = dseq + payload.size();
  if (peer_fin_ && end > peer_fin_dseq_) ++stack_.sanity_.data_past_fin;
  if (end <= rcv_dseq_) {
    send_dack();  // duplicate from a go-back retransmission
    return;
  }
  if (dseq > rcv_dseq_) {
    out_of_order_.emplace(dseq, std::move(payload));
    send_dack();
    return;
  }
  const std::size_t advance = rcv_dseq_ - dseq;
  BytesView fresh(payload.data() + advance, payload.size() - advance);
  rcv_dseq_ += fresh.size();
  if (on_data) on_data(fresh);
  if (finished_) return;
  deliver_in_order();
  if (finished_) return;
  maybe_deliver_eof();
  if (finished_) return;
  send_dack();
}

void MptcpSocket::deliver_in_order() {
  while (!out_of_order_.empty()) {
    auto it = out_of_order_.begin();
    if (it->first > rcv_dseq_) break;
    const std::uint64_t end = it->first + it->second.size();
    if (end > rcv_dseq_) {
      const std::size_t off = rcv_dseq_ - it->first;
      BytesView tail(it->second.data() + off, it->second.size() - off);
      rcv_dseq_ = end;
      if (on_data) on_data(tail);
      if (finished_) return;
    }
    out_of_order_.erase(it);
  }
}

void MptcpSocket::maybe_deliver_eof() {
  if (eof_delivered_) {
    send_dack();  // duplicate DATA_FIN: refresh the (possibly lost) DACK
    return;
  }
  if (!peer_fin_ || rcv_dseq_ != peer_fin_dseq_) return;
  eof_delivered_ = true;
  rcv_dseq_ += 1;  // DATA_FIN consumes one data sequence number
  send_dack();
  if (on_closed) on_closed("");
  maybe_finish_graceful();
}

void MptcpSocket::send_dack() {
  // DATA_ACKs travel out-of-band (like TCP options): cumulative, unordered,
  // and never retransmitted — a later DACK supersedes a lost one.
  if (Subflow* sf = active_subflow()) {
    stack_.send_dack_datagram(sf->tcp->local(), sf->tcp->remote(), token_, rcv_dseq_);
  }
}

void MptcpSocket::dack_refresh_tick() {
  if (finished_) return;
  // Cumulative refresh: repairs lost DACK datagrams and closes the tail
  // (last-DACK-lost) case without any reliable-stream coupling.
  if (rcv_dseq_ > 0 || eof_delivered_) send_dack();
  // DATA_FIN is retransmitted until acknowledged.
  if (fin_sent_ && !fin_acked_) {
    if (Subflow* sf = active_subflow()) {
      if (sf->tcp->send_space() >= 9) sf->tcp->send(make_dfin(fin_dseq_));
    }
  }
  dack_timer_ = stack_.simulator().schedule(config_.dack_refresh,
                                            [this] { dack_refresh_tick(); });
}

void MptcpSocket::handle_dack(std::uint64_t dack) {
  // Conservation: a cumulative DACK can never pass the high-water mark of
  // sequence space ever put on a subflow (dseq_nxt_ itself rolls back on
  // go-back retransmission, so it is not the right bound — a DACK for data
  // delivered on a now-dead path may arrive after the rollback).
  if (dack > dseq_high_) ++stack_.sanity_.ack_beyond_sent;
  if (dack <= dseq_una_) return;
  const std::uint64_t advance = dack - dseq_una_;
  const std::size_t popped = std::min<std::size_t>(advance, send_buffer_.size());
  send_buffer_.pop(popped);
  dseq_una_ = dack;
  if (dseq_nxt_ < dseq_una_) dseq_nxt_ = dseq_una_;
  if (fin_sent_ && !fin_acked_ && dack >= fin_dseq_ + 1) {
    fin_acked_ = true;
    maybe_finish_graceful();
    if (finished_) return;
  }
  if (popped > 0 && on_send_space && send_space() > 0) on_send_space();
  if (!finished_) try_send();
}

void MptcpSocket::handle_remove_addr(net::Ipv4Addr addr) {
  for (std::size_t i = 0; i < subflows_.size(); ++i) {
    Subflow& sf = subflows_[i];
    if (!sf.dead && sf.tcp->remote().addr == addr) {
      sf.dead = true;
      sf.tcp->on_closed = nullptr;
      sf.tcp->abort_silent();
    }
  }
  // Anything in flight on the removed path must be resent.
  dseq_nxt_ = dseq_una_;
  if (fin_sent_ && !fin_acked_) {
    fin_sent_ = false;
    fin_pending_ = true;
  }
  try_send();
}

MptcpSocket::Subflow* MptcpSocket::active_subflow() {
  Subflow* best = nullptr;
  for (auto& sf : subflows_) {
    if (!sf.established || sf.dead || !sf.tcp->connected()) continue;
    if (best == nullptr || sf.tcp->srtt() < best->tcp->srtt()) best = &sf;
  }
  return best;
}

void MptcpSocket::try_send() {
  if (finished_) return;
  Subflow* sf = active_subflow();
  if (sf == nullptr) return;

  for (;;) {
    const std::uint64_t unsent_off = dseq_nxt_ - dseq_una_;
    const std::size_t unsent =
        send_buffer_.size() > unsent_off ? send_buffer_.size() - unsent_off : 0;
    if (unsent > 0) {
      const std::size_t len = std::min(unsent, config_.record_payload);
      const std::size_t record_size = kDataHeader + len;
      if (sf->tcp->send_space() < record_size) return;
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Rec::Data));
      w.u64(dseq_nxt_);
      w.u32(static_cast<std::uint32_t>(len));
      w.raw(send_buffer_.peek(unsent_off, len));
      sf->tcp->send(w.data());
      dseq_nxt_ += len;
      if (dseq_nxt_ > dseq_high_) dseq_high_ = dseq_nxt_;
      continue;
    }
    if (fin_pending_ && !fin_sent_) {
      if (sf->tcp->send_space() < 9) return;
      fin_dseq_ = dseq_nxt_;
      sf->tcp->send(make_dfin(fin_dseq_));
      fin_sent_ = true;
      fin_pending_ = false;
      if (fin_dseq_ + 1 > dseq_high_) dseq_high_ = fin_dseq_ + 1;
    }
    return;
  }
}

void MptcpSocket::on_subflow_closed(std::size_t index, const std::string& reason) {
  Subflow& sf = subflows_[index];
  sf.dead = true;
  if (finished_) return;
  obs::inc(obs::counter("mptcp.subflows.closed"));
  obs::trace(stack_.simulator().now(), obs::TraceType::SubflowClose, token_);
  CB_LOG(Debug, "mptcp") << "subflow closed (" << reason << ")";
  if (active_subflow() != nullptr) {
    try_send();
    return;
  }
  // No path left: start the watch-for-address timeout unless a replacement
  // is already being set up.
  if (!address_wait_timer_.pending() && !path_timeout_timer_.pending()) {
    path_timeout_timer_ = stack_.simulator().schedule(config_.path_timeout, [this] {
      finish("path timeout: no address within watch window");
    });
  }
}

void MptcpSocket::handle_address_loss(net::Ipv4Addr addr) {
  if (finished_) return;
  bool lost_any = false;
  for (auto& sf : subflows_) {
    if (!sf.dead && sf.tcp->local().addr == addr) {
      lost_any = true;
      sf.dead = true;
      sf.tcp->on_closed = nullptr;  // silent death: no notification path
      sf.tcp->abort_silent();
    }
  }
  if (!lost_any) return;
  pending_remove_ = addr;
  if (active_subflow() == nullptr && !path_timeout_timer_.pending()) {
    path_timeout_timer_ = stack_.simulator().schedule(config_.path_timeout, [this] {
      finish("path timeout: no address within watch window");
    });
  }
}

void MptcpSocket::handle_address_available(net::Ipv4Addr addr) {
  if (finished_ || role_ != Role::Client) return;
  if (active_subflow() != nullptr) return;  // current path still fine
  address_wait_timer_.cancel();
  obs::inc(obs::counter("mptcp.subflows.switches"));
  obs::trace(stack_.simulator().now(), obs::TraceType::SubflowSwitch, token_);
  if (config_.address_wait == Duration::zero()) {
    add_client_subflow(addr);
    return;
  }
  // Mainline MPTCP's address_worker delay before corrective action.
  address_wait_timer_ = stack_.simulator().schedule(config_.address_wait, [this, addr] {
    if (!finished_) add_client_subflow(addr);
  });
}

void MptcpSocket::maybe_finish_graceful() {
  // Fully done once our DATA_FIN is acked and the peer's EOF was delivered.
  if (fin_acked_ && eof_delivered_) finish("");
}

void MptcpSocket::finish(const std::string& reason) {
  if (finished_) return;
  finished_ = true;
  address_wait_timer_.cancel();
  path_timeout_timer_.cancel();
  dack_timer_.cancel();
  dfin_rtx_timer_.cancel();
  for (auto& sf : subflows_) {
    if (!sf.tcp) continue;
    sf.tcp->on_data = nullptr;
    sf.tcp->on_closed = nullptr;
    sf.tcp->on_send_space = nullptr;
    sf.tcp->on_connected = nullptr;
    if (sf.dead) continue;
    if (reason.empty()) {
      sf.tcp->close();  // graceful: let TCP FINs drain
    } else {
      sf.tcp->abort();
    }
    sf.dead = true;
  }
  if (!reason.empty() && !eof_delivered_ && on_closed) on_closed(reason);
  // Break callback cycles through our own shared_ptr (apps capture the
  // connection in its own on_data/on_closed), mirroring TcpSocket::finish.
  on_connected = nullptr;
  on_data = nullptr;
  on_send_space = nullptr;
  on_closed = nullptr;
  stack_.deregister_connection(token_);
}

// --- MptcpStack ----------------------------------------------------------------

MptcpStack::MptcpStack(net::Node& node, TcpStack& tcp, MptcpConfig config)
    : node_(node), tcp_(tcp), config_(config), rng_(node.simulator().rng().fork(0x3B7C)) {
  node_.bind_udp(kMptcpDackPort, [this](const net::Packet& p) { on_dack_datagram(p); });
}

MptcpStack::~MptcpStack() {
  node_.unbind_udp(kMptcpDackPort);
  // Connections still alive at teardown: break app-closure cycles through
  // their own shared_ptr, same as ~TcpStack does for plain sockets.
  // Also mark them finished: a connection may outlive the stack (an event
  // closure owning it is released at simulator teardown), and its finish()
  // must not re-enter deregister_connection() against this freed stack.
  for (auto& [token, weak] : by_token_) {
    if (auto conn = weak.lock()) {
      conn->finished_ = true;
      conn->address_wait_timer_.cancel();
      conn->path_timeout_timer_.cancel();
      conn->dack_timer_.cancel();
      conn->dfin_rtx_timer_.cancel();
      conn->on_connected = nullptr;
      conn->on_data = nullptr;
      conn->on_send_space = nullptr;
      conn->on_closed = nullptr;
    }
  }
}

void MptcpStack::send_dack_datagram(net::EndPoint from, net::EndPoint to,
                                    std::uint64_t token, std::uint64_t dack) {
  ByteWriter w;
  w.u64(token);
  w.u64(dack);
  net::Packet p;
  p.src = net::EndPoint{from.addr, kMptcpDackPort};
  p.dst = net::EndPoint{to.addr, kMptcpDackPort};
  p.proto = net::Proto::Udp;
  p.payload = w.take();
  node_.send(std::move(p));
}

void MptcpStack::on_dack_datagram(const net::Packet& packet) {
  try {
    ByteReader r(packet.payload);
    const std::uint64_t token = r.u64();
    const std::uint64_t dack = r.u64();
    auto it = by_token_.find(token);
    if (it == by_token_.end()) return;
    if (auto conn = it->second.lock()) conn->handle_dack(dack);
  } catch (const std::out_of_range&) {
  }
}

std::uint64_t MptcpStack::fresh_token() {
  for (;;) {
    const std::uint64_t t = rng_.next_u64();
    if (t != 0 && !by_token_.contains(t)) return t;
  }
}

std::shared_ptr<MptcpSocket> MptcpStack::connect(net::EndPoint remote,
                                                 net::Ipv4Addr local_addr) {
  auto conn = std::shared_ptr<MptcpSocket>(
      new MptcpSocket(*this, MptcpSocket::Role::Client, fresh_token(), remote, config_));
  register_connection(conn);
  conn->start_initial_subflow(local_addr);
  return conn;
}

void MptcpStack::listen(std::uint16_t port, AcceptCallback on_accept) {
  listeners_[port] = std::move(on_accept);
  tcp_.listen(port, [this, port](std::shared_ptr<TcpSocket> tcp_socket) {
    auto pending = std::make_shared<PendingSubflow>();
    pending->tcp = std::move(tcp_socket);
    pending->port = port;
    pending->tcp->on_data = [this, pending](BytesView data) {
      pending->rx.append(data);
      on_pending_data(pending);
    };
    pending->tcp->on_closed = [pending](const std::string&) {
      // Died before identifying itself; nothing to clean up beyond TCP.
    };
  });
}

void MptcpStack::on_pending_data(const std::shared_ptr<PendingSubflow>& pending) {
  // Local copy: replacing tcp->on_data below destroys the closure that owns
  // the reference we were called with.
  const std::shared_ptr<PendingSubflow> sub = pending;
  if (sub->rx.size() < 9) return;
  const Bytes header = sub->rx.peek(0, 9);
  ByteReader r(header);
  const auto type = static_cast<Rec>(r.u8());
  const std::uint64_t token = r.u64();
  sub->rx.pop(9);

  // Hand off: the connection takes over the TCP callbacks. Deferred to a
  // fresh event so we are no longer inside the on_data we are replacing.
  sub->tcp->on_data = nullptr;
  sub->tcp->on_closed = nullptr;

  if (type == Rec::Cap) {
    auto conn = std::shared_ptr<MptcpSocket>(new MptcpSocket(
        *this, MptcpSocket::Role::Server, token, sub->tcp->remote(), config_));
    register_connection(conn);
    conn->adopt_server_subflow(sub->tcp, std::move(sub->rx));
    auto it = listeners_.find(sub->port);
    if (it != listeners_.end()) it->second(conn);
    return;
  }
  if (type == Rec::Join) {
    auto it = by_token_.find(token);
    std::shared_ptr<MptcpSocket> conn = it != by_token_.end() ? it->second.lock() : nullptr;
    if (conn == nullptr || conn->finished_) {
      sub->tcp->abort();
      return;
    }
    conn->adopt_server_subflow(sub->tcp, std::move(sub->rx));
    return;
  }
  sub->tcp->abort();  // protocol error: first record must identify
}

void MptcpStack::notify_address_invalidated(net::Ipv4Addr addr) {
  for (auto& [token, weak] : by_token_) {
    if (auto conn = weak.lock()) conn->handle_address_loss(addr);
  }
}

void MptcpStack::notify_address_available(net::Ipv4Addr addr) {
  // Copy: handle_address_available may mutate the registry via finish().
  std::vector<std::shared_ptr<MptcpSocket>> conns;
  for (auto& [token, weak] : by_token_) {
    if (auto conn = weak.lock()) conns.push_back(std::move(conn));
  }
  for (auto& conn : conns) conn->handle_address_available(addr);
}

void MptcpStack::register_connection(const std::shared_ptr<MptcpSocket>& conn) {
  by_token_[conn->token()] = conn;
}

void MptcpStack::deregister_connection(std::uint64_t token) { by_token_.erase(token); }

}  // namespace cb::transport
