// TCP over the simulated network.
//
// A reasonably complete Reno/NewReno sender: slow start, congestion
// avoidance, fast retransmit + fast recovery, Jacobson/Karn RTO with
// exponential backoff, go-back-N on timeout, out-of-order reassembly at the
// receiver, graceful FIN close in both directions, and RST abort. This is
// the machinery whose slow-start dynamics produce the paper's Fig.8/Fig.9
// "dip then overshoot" behaviour after a CellBricks re-attachment.
#pragma once

#include <cstdint>
#include <map>
#include <vector>
#include <memory>
#include <unordered_map>

#include "common/time.hpp"
#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "transport/byte_queue.hpp"
#include "transport/stream_socket.hpp"

namespace cb::transport {

/// Tuning knobs; defaults approximate a 2020-era Linux stack.
struct TcpConfig {
  std::size_t mss = 1400;
  std::size_t initial_cwnd_segments = 10;   // IW10
  std::size_t send_buffer = 1 << 20;        // 1 MiB
  std::size_t receive_window = 4 << 20;     // fixed advertised window
  Duration min_rto = Duration::ms(200);
  Duration initial_rto = Duration::s(1);
  Duration max_rto = Duration::s(60);
  int syn_retries = 6;
};

/// TCP segment header carried inside net::Packet payloads. Up to three SACK
/// blocks ride along, mirroring the RFC 2018 option.
struct TcpHeader {
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint32_t window = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sack;  // [start, end)
};
inline constexpr std::size_t kTcpHeaderBytes = 15;  // + 8 per SACK block

Bytes serialize_segment(const TcpHeader& h, BytesView payload);
bool parse_segment(BytesView wire, TcpHeader& h, Bytes& payload);

class TcpStack;

/// One TCP connection. Created via TcpStack::connect / TcpStack::listen.
class TcpSocket final : public StreamSocket {
 public:
  ~TcpSocket() override;

  std::size_t send(BytesView data) override;
  void close() override;
  std::size_t send_space() const override;
  bool connected() const override { return state_ == State::Established; }

  /// Hard abort: send RST (if possible) and drop all state.
  void abort();
  /// Drop all state without emitting anything — used when the underlying
  /// address is already gone (a detached radio cannot transmit an RST).
  void abort_silent();

  net::EndPoint local() const { return local_; }
  net::EndPoint remote() const { return remote_; }

  /// Smoothed RTT estimate (zero until the first sample).
  Duration srtt() const { return srtt_; }
  /// Congestion window in bytes (exposed for tests and benches).
  std::size_t cwnd() const { return static_cast<std::size_t>(cwnd_); }
  std::size_t ssthresh() const { return ssthresh_; }
  std::uint64_t bytes_acked_total() const { return bytes_acked_total_; }
  std::uint64_t retransmits() const { return retransmits_; }

 private:
  friend class TcpStack;
  enum class State {
    Closed,
    SynSent,
    SynReceived,
    Established,
    FinWait1,   // we closed, FIN sent, awaiting its ACK
    FinWait2,   // our FIN acked, awaiting peer FIN
    CloseWait,  // peer FIN received, we have not closed yet
    LastAck,    // peer closed first, our FIN sent
    Closing,    // simultaneous close
    TimeWait,
  };

  TcpSocket(TcpStack& stack, net::EndPoint local, net::EndPoint remote, TcpConfig config);

  // Sequence-number helpers (wraparound-safe).
  static bool seq_lt(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a - b) < 0;
  }
  static bool seq_le(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a - b) <= 0;
  }

  void start_connect();
  void start_passive(std::uint32_t peer_iss);
  void on_segment(const TcpHeader& h, Bytes payload);
  void handle_ack(const TcpHeader& h, bool pure_ack);
  void handle_data(const TcpHeader& h, Bytes payload);
  void try_send();
  void send_segment(std::uint32_t seq, std::size_t len, bool fin);
  void send_ack();
  void send_control(bool syn, bool ack, std::uint32_t seq);
  // SACK machinery.
  std::uint32_t rel(std::uint32_t seq) const { return seq - iss_; }
  void add_sack_range(std::uint32_t start_abs, std::uint32_t end_abs);
  void prune_scoreboard();
  /// First gap at/after `from_rel`; returns {start_rel, len} with len 0 if
  /// there is no hole before snd_nxt.
  std::pair<std::uint32_t, std::size_t> next_hole(std::uint32_t from_rel) const;
  /// Retransmit up to `budget` hole segments (ack-clocked loss repair).
  void retransmit_holes(int budget, bool force_first = false);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> receiver_sack_blocks() const;

  void on_rto();
  void arm_rtx_timer();
  void cancel_rtx_timer();
  void enter_time_wait();
  void finish(const std::string& reason);
  std::size_t flight_size() const;
  std::uint32_t fin_seq() const;
  void emit(const TcpHeader& h, BytesView payload);

  TcpStack& stack_;
  net::EndPoint local_;
  net::EndPoint remote_;
  TcpConfig config_;
  State state_ = State::Closed;

  // Send side.
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_wnd_ = 0;  // peer-advertised
  ByteQueue send_buffer_;     // bytes [snd_una_ .. snd_una_+size)
  bool fin_pending_ = false;  // close() called, FIN not yet sent
  bool fin_sent_ = false;
  double cwnd_ = 0;
  std::size_t ssthresh_ = 0;
  int dup_acks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint32_t recover_ = 0;  // recovery point

  // SACK scoreboard. Ranges are stored relative to iss_ so std::map
  // ordering is monotone; this bounds a single connection to < 4 GiB of
  // payload, which every workload in this repo respects.
  std::map<std::uint32_t, std::uint32_t> sacked_;  // rel start -> rel end
  std::size_t sacked_bytes_ = 0;
  std::uint32_t retx_cursor_rel_ = 0;   // next hole-retransmission candidate
  std::uint32_t highest_sent_rel_ = 0;  // for Karn-safe RTT sampling


  // RTT estimation (Karn's rule: only never-retransmitted segments sampled).
  bool rtt_sampling_ = false;
  std::uint32_t rtt_seq_ = 0;
  TimePoint rtt_sent_at_;
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration rto_ = Duration::zero();
  Duration min_rtt_ = Duration::zero();  // for HyStart-style slow-start exit
  int backoff_ = 0;

  // Receive side.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, Bytes> out_of_order_;  // keyed by start seq
  bool peer_fin_received_ = false;
  std::uint32_t peer_fin_seq_ = 0;

  sim::EventHandle rtx_timer_;
  sim::EventHandle time_wait_timer_;
  sim::EventHandle connect_timer_;
  int syn_attempts_ = 0;

  std::uint64_t bytes_acked_total_ = 0;
  std::uint64_t retransmits_ = 0;
};

/// Per-node TCP instance: demuxes segments to sockets and owns listeners.
class TcpStack {
 public:
  explicit TcpStack(net::Node& node, TcpConfig config = {});
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Active open from `local_addr` (defaults to the node's primary address).
  std::shared_ptr<TcpSocket> connect(net::EndPoint remote,
                                     net::Ipv4Addr local_addr = net::Ipv4Addr{});

  /// Passive open: `on_accept` fires with each established connection.
  using AcceptCallback = std::function<void(std::shared_ptr<TcpSocket>)>;
  void listen(std::uint16_t port, AcceptCallback on_accept);
  void close_listener(std::uint16_t port);

  net::Node& node() { return node_; }
  sim::Simulator& simulator() { return node_.simulator(); }
  const TcpConfig& config() const { return config_; }

 private:
  friend class TcpSocket;
  struct FlowKey {
    net::EndPoint local;
    net::EndPoint remote;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const {
      const std::size_t h1 = std::hash<net::EndPoint>{}(k.local);
      const std::size_t h2 = std::hash<net::EndPoint>{}(k.remote);
      return h1 ^ (h2 * 0x9E3779B97F4A7C15ULL);
    }
  };

  void dispatch(net::Packet&& packet);
  void transmit(const net::EndPoint& src, const net::EndPoint& dst, Bytes wire);
  void deregister(TcpSocket* socket);
  /// Passive-open socket finished its handshake: hand it to the listener.
  void on_established(TcpSocket* socket);
  std::uint32_t random_iss();

  net::Node& node_;
  TcpConfig config_;
  std::unordered_map<FlowKey, std::shared_ptr<TcpSocket>, FlowKeyHash> sockets_;
  std::unordered_map<std::uint16_t, AcceptCallback> listeners_;
  Rng rng_;
  // Per-segment metric handles, cached once at stack construction so the
  // datapath pays one null check instead of a name lookup per segment.
  obs::Counter* obs_tx_ = nullptr;
  obs::Counter* obs_rx_ = nullptr;
  obs::Counter* obs_rtx_ = nullptr;
  obs::Counter* obs_rto_ = nullptr;
};

}  // namespace cb::transport
