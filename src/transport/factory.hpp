// Uniform way for applications to use TCP or MPTCP: the paper runs its app
// workloads unmodified over both (MNO baseline = TCP, CellBricks = MPTCP).
#pragma once

#include <memory>

#include "transport/mptcp.hpp"
#include "transport/tcp.hpp"

namespace cb::transport {

/// Connection factory + listener registration, independent of the stack.
struct StreamTransport {
  std::function<std::shared_ptr<StreamSocket>(net::EndPoint remote)> connect;
  std::function<void(std::uint16_t port,
                     std::function<void(std::shared_ptr<StreamSocket>)> on_accept)>
      listen;
};

inline StreamTransport make_tcp_transport(TcpStack& stack) {
  return StreamTransport{
      [&stack](net::EndPoint remote) -> std::shared_ptr<StreamSocket> {
        return stack.connect(remote);
      },
      [&stack](std::uint16_t port, std::function<void(std::shared_ptr<StreamSocket>)> cb) {
        stack.listen(port, [cb = std::move(cb)](std::shared_ptr<TcpSocket> s) {
          cb(std::move(s));
        });
      }};
}

inline StreamTransport make_mptcp_transport(MptcpStack& stack) {
  return StreamTransport{
      [&stack](net::EndPoint remote) -> std::shared_ptr<StreamSocket> {
        return stack.connect(remote);
      },
      [&stack](std::uint16_t port, std::function<void(std::shared_ptr<StreamSocket>)> cb) {
        stack.listen(port, [cb = std::move(cb)](std::shared_ptr<MptcpSocket> s) {
          cb(std::move(s));
        });
      }};
}

}  // namespace cb::transport
