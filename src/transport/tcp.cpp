#include "transport/tcp.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace cb::transport {

// --- Wire format -----------------------------------------------------------

Bytes serialize_segment(const TcpHeader& h, BytesView payload) {
  ByteWriter w;
  w.u32(h.seq);
  w.u32(h.ack);
  w.u32(h.window);
  std::uint8_t flags = 0;
  if (h.syn) flags |= 1;
  if (h.ack_flag) flags |= 2;
  if (h.fin) flags |= 4;
  if (h.rst) flags |= 8;
  w.u8(flags);
  w.u8(0);  // reserved
  w.u8(static_cast<std::uint8_t>(h.sack.size()));
  for (const auto& [start, end] : h.sack) {
    w.u32(start);
    w.u32(end);
  }
  w.raw(payload);
  return w.take();
}

bool parse_segment(BytesView wire, TcpHeader& h, Bytes& payload) {
  if (wire.size() < kTcpHeaderBytes) return false;
  try {
    ByteReader r(wire);
    h.seq = r.u32();
    h.ack = r.u32();
    h.window = r.u32();
    const std::uint8_t flags = r.u8();
    r.u8();
    h.syn = flags & 1;
    h.ack_flag = flags & 2;
    h.fin = flags & 4;
    h.rst = flags & 8;
    const std::uint8_t n_sack = r.u8();
    h.sack.clear();
    for (std::uint8_t i = 0; i < n_sack; ++i) {
      const std::uint32_t start = r.u32();
      const std::uint32_t end = r.u32();
      h.sack.emplace_back(start, end);
    }
    payload = r.raw(r.remaining());
    return true;
  } catch (const std::out_of_range&) {
    return false;
  }
}

// --- TcpSocket ---------------------------------------------------------------

TcpSocket::TcpSocket(TcpStack& stack, net::EndPoint local, net::EndPoint remote,
                     TcpConfig config)
    : stack_(stack), local_(local), remote_(remote), config_(config) {
  cwnd_ = static_cast<double>(config_.initial_cwnd_segments * config_.mss);
  ssthresh_ = config_.receive_window;  // effectively "infinite" until loss
  rto_ = config_.initial_rto;
  snd_wnd_ = static_cast<std::uint32_t>(config_.receive_window);
}

TcpSocket::~TcpSocket() {
  rtx_timer_.cancel();
  time_wait_timer_.cancel();
  connect_timer_.cancel();
}

std::uint32_t TcpSocket::fin_seq() const {
  return snd_una_ + static_cast<std::uint32_t>(send_buffer_.size());
}

std::size_t TcpSocket::flight_size() const {
  const std::size_t outstanding = snd_nxt_ - snd_una_;
  return outstanding > sacked_bytes_ ? outstanding - sacked_bytes_ : 0;
}

std::size_t TcpSocket::send_space() const {
  return config_.send_buffer - send_buffer_.size();
}

std::size_t TcpSocket::send(BytesView data) {
  if (state_ != State::Established && state_ != State::CloseWait &&
      state_ != State::SynSent) {
    return 0;
  }
  if (fin_pending_ || fin_sent_) return 0;
  const std::size_t take = std::min(data.size(), send_space());
  send_buffer_.append(data.subspan(0, take));
  if (state_ == State::Established || state_ == State::CloseWait) try_send();
  return take;
}

void TcpSocket::close() {
  if (fin_pending_ || fin_sent_) return;
  switch (state_) {
    case State::SynSent:
      finish("closed before connect");
      return;
    case State::Established:
    case State::SynReceived:
    case State::CloseWait:
      fin_pending_ = true;
      try_send();
      return;
    default:
      return;
  }
}

void TcpSocket::abort() {
  if (state_ == State::Closed) return;
  TcpHeader h;
  h.seq = snd_nxt_;
  h.ack = rcv_nxt_;
  h.ack_flag = true;
  h.rst = true;
  emit(h, {});
  finish("reset by local");
}

void TcpSocket::abort_silent() {
  if (state_ == State::Closed) return;
  finish("aborted (silent)");
}

void TcpSocket::start_connect() {
  state_ = State::SynSent;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  recover_ = iss_;
  send_control(/*syn=*/true, /*ack=*/false, iss_);
  ++syn_attempts_;
  const Duration delay = config_.initial_rto * (1LL << std::min(syn_attempts_ - 1, 6));
  connect_timer_ = stack_.simulator().schedule(delay, [this] {
    if (state_ != State::SynSent) return;
    if (syn_attempts_ >= config_.syn_retries) {
      finish("connect timeout");
      return;
    }
    start_connect();  // retransmit SYN with backoff
  });
}

void TcpSocket::start_passive(std::uint32_t peer_iss) {
  state_ = State::SynReceived;
  irs_ = peer_iss;
  rcv_nxt_ = peer_iss + 1;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  recover_ = iss_;
  send_control(/*syn=*/true, /*ack=*/true, iss_);
  ++syn_attempts_;
  connect_timer_ = stack_.simulator().schedule(config_.initial_rto, [this] {
    if (state_ != State::SynReceived) return;
    if (syn_attempts_ >= config_.syn_retries) {
      finish("accept timeout");
      return;
    }
    start_passive(irs_);
  });
}

void TcpSocket::send_control(bool syn, bool ack, std::uint32_t seq) {
  TcpHeader h;
  h.seq = seq;
  h.ack = rcv_nxt_;
  h.syn = syn;
  h.ack_flag = ack;
  h.window = static_cast<std::uint32_t>(config_.receive_window);
  emit(h, {});
}

void TcpSocket::send_ack() {
  TcpHeader h;
  h.seq = snd_nxt_;
  h.ack = rcv_nxt_;
  h.ack_flag = true;
  h.window = static_cast<std::uint32_t>(config_.receive_window);
  h.sack = receiver_sack_blocks();
  emit(h, {});
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> TcpSocket::receiver_sack_blocks() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> blocks;
  for (const auto& [start, data] : out_of_order_) {
    const std::uint32_t end = start + static_cast<std::uint32_t>(data.size());
    if (!blocks.empty() && blocks.back().second == start) {
      blocks.back().second = end;  // merge adjacent
    } else {
      if (blocks.size() == 3) break;
      blocks.emplace_back(start, end);
    }
  }
  return blocks;
}

void TcpSocket::add_sack_range(std::uint32_t start_abs, std::uint32_t end_abs) {
  // Clamp to the outstanding window; ignore stale info.
  if (seq_le(end_abs, snd_una_) || seq_lt(snd_nxt_, start_abs)) return;
  std::uint32_t s = rel(seq_lt(start_abs, snd_una_) ? snd_una_ : start_abs);
  std::uint32_t e = rel(seq_lt(snd_nxt_, end_abs) ? snd_nxt_ : end_abs);
  if (s >= e) return;

  // Merge [s, e) into the scoreboard.
  auto it = sacked_.lower_bound(s);
  if (it != sacked_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= s) {
      s = prev->first;
      e = std::max(e, prev->second);
      it = prev;
    }
  }
  while (it != sacked_.end() && it->first <= e) {
    e = std::max(e, it->second);
    sacked_bytes_ -= it->second - it->first;
    it = sacked_.erase(it);
  }
  sacked_[s] = e;
  sacked_bytes_ += e - s;
}

void TcpSocket::prune_scoreboard() {
  const std::uint32_t una = rel(snd_una_);
  auto it = sacked_.begin();
  while (it != sacked_.end() && it->second <= una) {
    sacked_bytes_ -= it->second - it->first;
    it = sacked_.erase(it);
  }
  if (it != sacked_.end() && it->first < una) {
    sacked_bytes_ -= una - it->first;
    const std::uint32_t end = it->second;
    sacked_.erase(it);
    sacked_[una] = end;
  }
}

std::pair<std::uint32_t, std::size_t> TcpSocket::next_hole(std::uint32_t from_rel) const {
  const std::uint32_t limit = rel(snd_nxt_);
  std::uint32_t pos = std::max(from_rel, rel(snd_una_));
  while (pos < limit) {
    auto it = sacked_.upper_bound(pos);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > pos) {
        pos = prev->second;  // inside a sacked range: skip it
        continue;
      }
    }
    const std::uint32_t hole_end = it == sacked_.end() ? limit : std::min(it->first, limit);
    if (hole_end > pos) return {pos, hole_end - pos};
    break;
  }
  return {limit, 0};
}

void TcpSocket::retransmit_holes(int budget, bool force_first) {
  // RFC 6675-style pipe gating: retransmissions also respect the window —
  // except the fast-retransmit itself (RFC 5681 sends the lost segment
  // unconditionally; without this the repair can sit behind a bloated
  // queue's worth of pipe for seconds).
  const std::size_t usable = std::min<std::size_t>(static_cast<std::size_t>(cwnd_), snd_wnd_);
  while (budget > 0) {
    if (!force_first && flight_size() >= usable) {
      CB_LOG(Trace, "tcp") << local_.to_string() << " retx gated: flight "
                           << flight_size() << " >= usable " << usable;
      return;
    }
    force_first = false;
    auto [start_rel, hole_len] = next_hole(std::max(retx_cursor_rel_, rel(snd_una_)));
    if (hole_len == 0) return;
    const std::uint32_t seq = iss_ + start_rel;
    const std::size_t buffer_offset = start_rel - rel(snd_una_);
    const std::size_t data_in_hole =
        send_buffer_.size() > buffer_offset
            ? std::min<std::size_t>(hole_len, send_buffer_.size() - buffer_offset)
            : 0;
    if (data_in_hole > 0) {
      const std::size_t len = std::min(data_in_hole, config_.mss);
      send_segment(seq, len, /*fin=*/false);
      retx_cursor_rel_ = start_rel + static_cast<std::uint32_t>(len);
    } else if (fin_sent_) {
      send_segment(seq, 0, /*fin=*/true);
      retx_cursor_rel_ = start_rel + 1;
    } else {
      return;
    }
    ++retransmits_;
    obs::inc(stack_.obs_rtx_);
    rtt_sampling_ = false;
    --budget;
  }
}

void TcpSocket::emit(const TcpHeader& h, BytesView payload) {
  stack_.transmit(local_, remote_, serialize_segment(h, payload));
}

void TcpSocket::send_segment(std::uint32_t seq, std::size_t len, bool fin) {
  TcpHeader h;
  h.seq = seq;
  h.ack = rcv_nxt_;
  h.ack_flag = true;
  h.fin = fin;
  h.window = static_cast<std::uint32_t>(config_.receive_window);
  h.sack = receiver_sack_blocks();
  const Bytes payload = send_buffer_.peek(seq - snd_una_, len);
  emit(h, payload);

  // Time one never-before-sent segment at a time (Karn's rule: only bytes
  // above the high-water mark are first transmissions).
  if (!rtt_sampling_ && len > 0 && rel(seq) >= highest_sent_rel_) {
    rtt_sampling_ = true;
    rtt_seq_ = seq + static_cast<std::uint32_t>(len);
    rtt_sent_at_ = stack_.simulator().now();
  }
  const std::uint32_t end_rel = rel(seq) + static_cast<std::uint32_t>(len) + (fin ? 1 : 0);
  if (end_rel > highest_sent_rel_) highest_sent_rel_ = end_rel;
}

void TcpSocket::try_send() {
  if (state_ != State::Established && state_ != State::CloseWait &&
      state_ != State::FinWait1 && state_ != State::Closing &&
      state_ != State::LastAck) {
    return;
  }

  const std::size_t usable = std::min<std::size_t>(static_cast<std::size_t>(cwnd_), snd_wnd_);
  bool sent_anything = false;

  for (;;) {
    // Skip over ranges the receiver already holds (a post-RTO go-back walk
    // moves forward through the scoreboard without resending sacked data).
    auto it = sacked_.upper_bound(rel(snd_nxt_));
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > rel(snd_nxt_)) {
        snd_nxt_ = iss_ + prev->second;
        continue;
      }
    }
    const std::size_t flight = flight_size();
    const std::size_t unsent_offset = snd_nxt_ - snd_una_;
    const std::size_t unsent =
        send_buffer_.size() > unsent_offset ? send_buffer_.size() - unsent_offset : 0;
    if (unsent == 0) break;
    if (flight >= usable) break;
    std::size_t len = std::min({unsent, config_.mss, usable - flight});
    if (it != sacked_.end()) {
      len = std::min<std::size_t>(len, it->first - rel(snd_nxt_));
    }
    if (len == 0) break;
    // Sender-side SWS avoidance (RFC 1122 4.2.3.4): when the window — not
    // the application — is what truncates the segment below one MSS, hold it
    // until an ACK opens more window. Without this a bulk sender degenerates
    // into MSS/8-sized segments (each ACK opens a sliver, which is sent
    // immediately, which produces an equally small ACK) and wastes ~20% of a
    // bottleneck link on headers. Data-limited small writes (signaling,
    // request/response apps) still go out immediately, and a drained flight
    // always permits a send, so progress is never deadlocked. Gate on the
    // window residual, not len: a segment clamped sub-MSS by the sacked_
    // boundary (a hole in front of sacked data during a post-RTO walk) must
    // go out now, not wait for the flight to drain.
    if (usable - flight < config_.mss && len < unsent && flight > 0) break;
    send_segment(snd_nxt_, len, /*fin=*/false);
    snd_nxt_ += static_cast<std::uint32_t>(len);
    sent_anything = true;
  }

  // Send FIN once all data is out (FIN consumes one sequence number).
  if (fin_pending_ && !fin_sent_ && snd_nxt_ == fin_seq()) {
    send_segment(snd_nxt_, 0, /*fin=*/true);
    snd_nxt_ += 1;
    fin_sent_ = true;
    fin_pending_ = false;
    sent_anything = true;
    if (state_ == State::Established) state_ = State::FinWait1;
    else if (state_ == State::CloseWait) state_ = State::LastAck;
  }

  if (sent_anything && !rtx_timer_.pending()) arm_rtx_timer();
}

void TcpSocket::arm_rtx_timer() {
  rtx_timer_.cancel();
  Duration rto = rto_ * (1LL << std::min(backoff_, 6));
  rto = std::min(rto, config_.max_rto);
  rtx_timer_ = stack_.simulator().schedule(rto, [this] { on_rto(); });
}

void TcpSocket::cancel_rtx_timer() { rtx_timer_.cancel(); }

void TcpSocket::on_rto() {
  if (state_ == State::Closed || flight_size() == 0) return;
  CB_LOG(Debug, "tcp") << local_.to_string() << " RTO, cwnd reset, retransmit "
                       << snd_una_;
  ssthresh_ = std::max<std::size_t>((snd_nxt_ - snd_una_) / 2, 2 * config_.mss);
  cwnd_ = static_cast<double>(config_.mss);
  in_fast_recovery_ = false;
  dup_acks_ = 0;
  recover_ = snd_nxt_;  // RFC 6582: no dup-ack recovery for pre-RTO holes
  ++backoff_;
  rtt_sampling_ = false;
  ++retransmits_;
  obs::inc(stack_.obs_rtx_);
  obs::inc(stack_.obs_rto_);
  // Go-back with SACK awareness: resume from the oldest unacked byte; the
  // forward walk in try_send skips ranges the receiver already has.
  snd_nxt_ = snd_una_;
  retx_cursor_rel_ = rel(snd_una_);
  if (fin_sent_) {
    fin_sent_ = false;
    fin_pending_ = true;
  }
  try_send();
  arm_rtx_timer();
}

void TcpSocket::on_segment(const TcpHeader& h, Bytes payload) {
  if (h.rst) {
    finish("reset by peer");
    return;
  }

  switch (state_) {
    case State::SynSent:
      if (h.syn && h.ack_flag && h.ack == snd_nxt_) {
        connect_timer_.cancel();
        irs_ = h.seq;
        rcv_nxt_ = h.seq + 1;
        snd_una_ = h.ack;
        snd_wnd_ = h.window;
        state_ = State::Established;
        send_ack();
        if (on_connected) on_connected();
        try_send();
      }
      return;

    case State::SynReceived:
      if (h.ack_flag && h.ack == snd_nxt_) {
        connect_timer_.cancel();
        snd_una_ = h.ack;
        snd_wnd_ = h.window;
        state_ = State::Established;
        stack_.on_established(this);
        // The handshake ACK may carry data.
        if (!payload.empty() || h.fin) handle_data(h, std::move(payload));
        return;
      }
      if (h.syn && !h.ack_flag) {
        // Duplicate SYN: re-send SYN-ACK.
        send_control(true, true, iss_);
      }
      return;

    case State::Closed:
      return;

    default:
      break;
  }

  if (h.syn) return;  // stray SYN on an established connection: ignore

  if (h.ack_flag) handle_ack(h, payload.empty());
  if (state_ == State::Closed) return;  // finish() may have run
  if (!payload.empty() || h.fin) handle_data(h, std::move(payload));
}

void TcpSocket::handle_ack(const TcpHeader& h, bool pure_ack) {
  snd_wnd_ = h.window;

  bool new_sack_info = false;
  for (const auto& [start, end] : h.sack) {
    const std::size_t before = sacked_bytes_;
    add_sack_range(start, end);
    if (sacked_bytes_ != before) new_sack_info = true;
  }

  if (seq_lt(snd_nxt_, h.ack)) {
    // After a go-back-N reset the peer can legitimately ack bytes above the
    // rewound snd_nxt_ (they arrived before the reset): adopt its view.
    if (seq_le(h.ack, fin_seq() + 1)) {
      snd_nxt_ = h.ack;
    } else {
      return;  // acks data that was never sent: ignore
    }
  }

  if (seq_lt(snd_una_, h.ack)) {
    const std::uint32_t acked = h.ack - snd_una_;
    const std::size_t popped = std::min<std::size_t>(acked, send_buffer_.size());
    send_buffer_.pop(popped);
    bytes_acked_total_ += popped;
    snd_una_ = h.ack;
    dup_acks_ = 0;
    backoff_ = 0;
    prune_scoreboard();

    // RTT sample (Karn-safe: rtt_sampling_ is cleared on any retransmit).
    if (rtt_sampling_ && seq_le(rtt_seq_, h.ack)) {
      const Duration sample = stack_.simulator().now() - rtt_sent_at_;
      if (srtt_ == Duration::zero()) {
        srtt_ = sample;
        rttvar_ = sample / 2;
      } else {
        const Duration err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
        rttvar_ = rttvar_ * 0.75 + err * 0.25;
        srtt_ = srtt_ * 0.875 + sample * 0.125;
      }
      rto_ = std::max(srtt_ + rttvar_ * 4, config_.min_rto);
      rtt_sampling_ = false;

      if (min_rtt_ == Duration::zero() || sample < min_rtt_) min_rtt_ = sample;
      // HyStart-style delay-based slow-start exit: a queueing-delay rise
      // means the pipe is full — stop doubling before the queue overflows.
      if (static_cast<std::size_t>(cwnd_) < ssthresh_ && min_rtt_ > Duration::zero()) {
        const Duration threshold =
            std::clamp(min_rtt_ / 8, Duration::ms(4), Duration::ms(16));
        if (sample > min_rtt_ + threshold) {
          ssthresh_ = static_cast<std::size_t>(cwnd_);
        }
      }
    }

    if (in_fast_recovery_) {
      if (seq_le(recover_, h.ack)) {
        // Full ACK: leave recovery.
        in_fast_recovery_ = false;
        cwnd_ = static_cast<double>(ssthresh_);
      } else {
        // Partial ACK: repair the next hole(s), stay in recovery.
        retx_cursor_rel_ = std::max(retx_cursor_rel_, rel(snd_una_));
        retransmit_holes(2);
      }
    } else {
      if (static_cast<std::size_t>(cwnd_) < ssthresh_) {
        cwnd_ += static_cast<double>(std::min<std::size_t>(acked, config_.mss));
      } else {
        cwnd_ += static_cast<double>(config_.mss) * static_cast<double>(config_.mss) / cwnd_;
      }
    }

    if (flight_size() == 0) {
      cancel_rtx_timer();
    } else {
      arm_rtx_timer();
    }

    // FIN acknowledgement transitions.
    if (fin_sent_ && h.ack == snd_nxt_) {
      if (state_ == State::FinWait1) {
        state_ = State::FinWait2;
      } else if (state_ == State::Closing) {
        enter_time_wait();
        return;
      } else if (state_ == State::LastAck) {
        finish("");
        return;
      }
    }

    if (popped > 0 && on_send_space && send_space() > 0) on_send_space();
    if (state_ != State::Closed) try_send();
    return;
  }

  // Duplicate ACK handling: only pure (data-less) non-advancing ACKs count
  // — data segments from the peer legitimately repeat the ack number.
  if (pure_ack && h.ack == snd_una_ && snd_nxt_ != snd_una_ && !h.fin) {
    if (new_sack_info || h.sack.empty()) ++dup_acks_;
    // RFC 6582/6675 "recover" guard: at most one window reduction per
    // round trip of loss — re-entry is allowed only once the cumulative
    // ack has passed the previous recovery point.
    if (dup_acks_ >= 3 && !in_fast_recovery_ && seq_le(recover_, snd_una_)) {
      // Enter SACK-based loss recovery (RFC 6675 pipe model): halve the
      // window; the SACK-adjusted flight gates every transmission, so each
      // arriving (dup) ack clocks out roughly one repair segment.
      ssthresh_ = std::max<std::size_t>((snd_nxt_ - snd_una_) / 2, 2 * config_.mss);
      cwnd_ = static_cast<double>(ssthresh_);
      in_fast_recovery_ = true;
      recover_ = snd_nxt_;
      retx_cursor_rel_ = rel(snd_una_);
      CB_LOG(Trace, "tcp") << local_.to_string() << " enter recovery: cwnd " << cwnd_
                           << " outstanding " << snd_nxt_ - snd_una_ << " sacked "
                           << sacked_bytes_;
      retransmit_holes(1, /*force_first=*/true);
      arm_rtx_timer();
    } else if (in_fast_recovery_) {
      retransmit_holes(2);
      try_send();
      arm_rtx_timer();
    }
  }
}

void TcpSocket::handle_data(const TcpHeader& h, Bytes payload) {
  if (h.fin) {
    peer_fin_received_ = true;
    peer_fin_seq_ = h.seq + static_cast<std::uint32_t>(payload.size());
  }

  if (!payload.empty()) {
    const std::uint32_t seg_end = h.seq + static_cast<std::uint32_t>(payload.size());
    if (seq_le(seg_end, rcv_nxt_)) {
      send_ack();  // fully duplicate
    } else if (seq_lt(rcv_nxt_, h.seq)) {
      out_of_order_.emplace(h.seq, std::move(payload));
      send_ack();  // duplicate ACK signals the hole
    } else {
      // In-order (possibly with overlap to trim).
      const std::uint32_t advance = rcv_nxt_ - h.seq;
      BytesView fresh(payload.data() + advance, payload.size() - advance);
      rcv_nxt_ += static_cast<std::uint32_t>(fresh.size());
      if (on_data) {
        auto cb = on_data;  // callee may reassign on_data (MPTCP handoff)
        cb(fresh);
      }
      if (state_ == State::Closed) return;  // app closed us re-entrantly

      // Drain any contiguous out-of-order segments.
      while (!out_of_order_.empty()) {
        auto it = out_of_order_.begin();
        if (seq_lt(rcv_nxt_, it->first)) break;
        const std::uint32_t end = it->first + static_cast<std::uint32_t>(it->second.size());
        if (seq_lt(rcv_nxt_, end)) {
          const std::uint32_t off = rcv_nxt_ - it->first;
          BytesView tail(it->second.data() + off, it->second.size() - off);
          rcv_nxt_ = end;
          if (on_data) {
            auto cb = on_data;
            cb(tail);
          }
          if (state_ == State::Closed) return;
        }
        out_of_order_.erase(it);
      }
      send_ack();
    }
  }

  // Process the peer's FIN only once all data before it has arrived.
  if (peer_fin_received_ && rcv_nxt_ == peer_fin_seq_) {
    peer_fin_received_ = false;
    rcv_nxt_ += 1;
    send_ack();
    switch (state_) {
      case State::Established:
        state_ = State::CloseWait;
        if (on_closed) on_closed("");
        break;
      case State::FinWait1:
        // Our FIN unacked yet: simultaneous close.
        state_ = State::Closing;
        if (on_closed) on_closed("");
        break;
      case State::FinWait2:
        if (on_closed) on_closed("");
        enter_time_wait();
        break;
      default:
        break;
    }
  }
}

void TcpSocket::enter_time_wait() {
  state_ = State::TimeWait;
  cancel_rtx_timer();
  time_wait_timer_ = stack_.simulator().schedule(Duration::ms(1000), [this] { finish(""); });
}

void TcpSocket::finish(const std::string& reason) {
  if (state_ == State::Closed) return;
  const bool notify = state_ != State::CloseWait && state_ != State::TimeWait &&
                      state_ != State::LastAck && state_ != State::Closing;
  state_ = State::Closed;
  rtx_timer_.cancel();
  time_wait_timer_.cancel();
  connect_timer_.cancel();
  // CloseWait/TimeWait/LastAck already delivered EOF to the app when the
  // peer's FIN was processed; avoid double notification.
  if ((notify || !reason.empty()) && on_closed) on_closed(reason);
  // Break callback reference cycles: app closures routinely capture this
  // socket's own shared_ptr (listen handlers, echo servers), which would
  // otherwise keep the socket alive forever once the map entry is gone.
  on_connected = nullptr;
  on_data = nullptr;
  on_send_space = nullptr;
  on_closed = nullptr;
  stack_.deregister(this);  // may destroy *this — must be the last statement
}

// --- TcpStack -----------------------------------------------------------------

TcpStack::TcpStack(net::Node& node, TcpConfig config)
    : node_(node),
      config_(config),
      rng_(node.simulator().rng().fork(0x7C9)),
      obs_tx_(obs::counter("tcp.segments.sent")),
      obs_rx_(obs::counter("tcp.segments.received")),
      obs_rtx_(obs::counter("tcp.retransmits")),
      obs_rto_(obs::counter("tcp.rto")) {
  node_.set_tcp_demux([this](net::Packet&& p) { dispatch(std::move(p)); });
}

TcpStack::~TcpStack() {
  node_.set_tcp_demux(nullptr);
  // Sockets still open at stack teardown (test/scenario end) hold app
  // closures that may capture their own shared_ptr; drop the callbacks so
  // the cycles break and LeakSanitizer sees a clean exit. Force-close each
  // socket too: a socket may outlive the stack (an event closure owning it
  // is released later, e.g. at simulator teardown), and its destructor must
  // not re-enter finish()/deregister() against this freed stack.
  for (auto& [key, socket] : sockets_) {
    socket->state_ = TcpSocket::State::Closed;
    socket->rtx_timer_.cancel();
    socket->time_wait_timer_.cancel();
    socket->connect_timer_.cancel();
    socket->on_connected = nullptr;
    socket->on_data = nullptr;
    socket->on_send_space = nullptr;
    socket->on_closed = nullptr;
  }
}

std::uint32_t TcpStack::random_iss() { return static_cast<std::uint32_t>(rng_.next_u64()); }

std::shared_ptr<TcpSocket> TcpStack::connect(net::EndPoint remote, net::Ipv4Addr local_addr) {
  if (!local_addr.valid()) local_addr = node_.primary_address();
  const net::EndPoint local{local_addr, node_.alloc_port()};
  auto socket = std::shared_ptr<TcpSocket>(new TcpSocket(*this, local, remote, config_));
  socket->iss_ = random_iss();
  sockets_[FlowKey{local, remote}] = socket;
  socket->start_connect();
  return socket;
}

void TcpStack::listen(std::uint16_t port, AcceptCallback on_accept) {
  listeners_[port] = std::move(on_accept);
}

void TcpStack::close_listener(std::uint16_t port) { listeners_.erase(port); }

void TcpStack::on_established(TcpSocket* socket) {
  auto it = listeners_.find(socket->local().port);
  if (it == listeners_.end()) return;
  auto sit = sockets_.find(FlowKey{socket->local(), socket->remote()});
  if (sit != sockets_.end()) it->second(sit->second);
}

void TcpStack::dispatch(net::Packet&& packet) {
  TcpHeader h;
  Bytes payload;
  if (!parse_segment(packet.payload, h, payload)) return;
  obs::inc(obs_rx_);

  const net::EndPoint local = packet.dst;
  const net::EndPoint remote = packet.src;

  auto it = sockets_.find(FlowKey{local, remote});
  if (it != sockets_.end()) {
    // Keep the socket alive across callbacks that may deregister it.
    std::shared_ptr<TcpSocket> socket = it->second;
    socket->on_segment(h, std::move(payload));
    return;
  }

  // No socket: a SYN to a listening port creates one (passive open).
  if (h.syn && !h.ack_flag && listeners_.contains(local.port)) {
    auto socket = std::shared_ptr<TcpSocket>(new TcpSocket(*this, local, remote, config_));
    socket->iss_ = random_iss();
    sockets_[FlowKey{local, remote}] = socket;
    socket->start_passive(h.seq);
    return;
  }

  // Otherwise reset (unless the stray segment was itself a reset).
  if (!h.rst) {
    TcpHeader rst;
    rst.seq = h.ack;
    rst.ack = h.seq + static_cast<std::uint32_t>(payload.size()) + (h.syn ? 1 : 0);
    rst.ack_flag = true;
    rst.rst = true;
    transmit(local, remote, serialize_segment(rst, {}));
  }
}

void TcpStack::transmit(const net::EndPoint& src, const net::EndPoint& dst, Bytes wire) {
  obs::inc(obs_tx_);
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.proto = net::Proto::Tcp;
  p.payload = std::move(wire);
  node_.send(std::move(p));
}

void TcpStack::deregister(TcpSocket* socket) {
  sockets_.erase(FlowKey{socket->local(), socket->remote()});
}

}  // namespace cb::transport
