// Multipath TCP built on the TCP substrate.
//
// Implements the subset of RFC 6824/8684 semantics that host-driven mobility
// needs, the way the paper uses it (§4.2):
//   * a connection-level data sequence space framed over TCP subflows
//     (MP_CAPABLE / MP_JOIN tokens, DSS-style mappings, DATA_FIN),
//   * cumulative data ACKs so the sender can release its buffer and
//     retransmit un-acked data on a fresh subflow after a path dies,
//   * REMOVE_ADDR so the peer drops subflows for an invalidated address,
//   * the mainline stack's `address_worker` wait period — hard-coded 500 ms
//     in Linux (mptcp_fullmesh.c), configurable here because Fig.9 of the
//     paper studies exactly what happens when it is removed,
//   * the 60 s "watch for a new address" timeout after which the connection
//     is torn down.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "transport/tcp.hpp"

namespace cb::transport {

/// UDP port used for connection-level DATA_ACKs. Real MPTCP carries them
/// as TCP options on whatever packet goes out next — per-packet and not
/// retransmitted; a datagram side channel reproduces those semantics (a
/// lost DACK is simply superseded by the next cumulative one).
inline constexpr std::uint16_t kMptcpDackPort = 60999;

struct MptcpConfig {
  /// Max payload bytes per DATA record (record header is 13 bytes).
  std::size_t record_payload = 1380;
  /// Connection-level send buffer.
  std::size_t send_buffer = 1 << 20;
  /// Wait between noticing an address change and opening a new subflow
  /// (Linux mainline: 500 ms; Fig.9 removes it).
  Duration address_wait = Duration::ms(500);
  /// Tear the connection down if no address appears within this window.
  Duration path_timeout = Duration::s(60);
  /// Periodic cumulative-DACK refresh (covers lost datagrams / tails).
  Duration dack_refresh = Duration::ms(500);
};

class MptcpStack;

/// One MPTCP connection (either side). Implements StreamSocket so
/// applications cannot tell it apart from plain TCP.
class MptcpSocket final : public StreamSocket,
                          public std::enable_shared_from_this<MptcpSocket> {
 public:
  ~MptcpSocket() override;

  std::size_t send(BytesView data) override;
  void close() override;
  std::size_t send_space() const override;
  bool connected() const override;

  /// Number of currently-established subflows.
  std::size_t subflow_count() const;
  /// Connection token (for tests/diagnostics).
  std::uint64_t token() const { return token_; }
  std::uint64_t data_acked() const { return dseq_una_; }

 private:
  friend class MptcpStack;
  enum class Role { Client, Server };

  struct Subflow {
    std::shared_ptr<TcpSocket> tcp;
    ByteQueue rx;               // unparsed record bytes
    bool established = false;
    bool dead = false;
  };

  MptcpSocket(MptcpStack& stack, Role role, std::uint64_t token, net::EndPoint remote,
              MptcpConfig config);

  void start_initial_subflow(net::Ipv4Addr local_addr);
  void adopt_server_subflow(std::shared_ptr<TcpSocket> tcp, ByteQueue carried_over);
  void add_client_subflow(net::Ipv4Addr local_addr);
  void attach_subflow_callbacks(std::size_t index);
  void on_subflow_data(std::size_t index, BytesView data);
  void parse_records(std::size_t index);
  void handle_data_record(std::uint64_t dseq, Bytes payload);
  void handle_dack(std::uint64_t dack);
  void handle_remove_addr(net::Ipv4Addr addr);
  void deliver_in_order();
  void maybe_deliver_eof();
  void try_send();
  void send_dack();
  void dack_refresh_tick();
  Subflow* active_subflow();
  void on_subflow_closed(std::size_t index, const std::string& reason);
  void handle_address_loss(net::Ipv4Addr addr);
  void handle_address_available(net::Ipv4Addr addr);
  void finish(const std::string& reason);
  void maybe_finish_graceful();

  MptcpStack& stack_;
  Role role_;
  std::uint64_t token_;
  net::EndPoint remote_;
  MptcpConfig config_;
  bool established_ = false;
  bool finished_ = false;

  std::vector<Subflow> subflows_;

  // Sender.
  ByteQueue send_buffer_;       // bytes [dseq_una_, dseq_una_+size)
  std::uint64_t dseq_una_ = 0;  // lowest unacked data sequence
  std::uint64_t dseq_nxt_ = 0;  // next data sequence to put on a subflow
  std::uint64_t dseq_high_ = 0;  // highest sequence ever sent (+1 for FIN);
                                 // never rolls back — bounds valid DACKs
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  std::uint64_t fin_dseq_ = 0;  // data sequence number the DATA_FIN occupies

  // Receiver.
  std::uint64_t rcv_dseq_ = 0;
  std::map<std::uint64_t, Bytes> out_of_order_;
  bool peer_fin_ = false;
  std::uint64_t peer_fin_dseq_ = 0;
  bool eof_delivered_ = false;

  // Mobility.
  net::Ipv4Addr pending_remove_;  // address to advertise as removed
  sim::EventHandle address_wait_timer_;
  sim::EventHandle path_timeout_timer_;
  sim::EventHandle dack_timer_;
  sim::EventHandle dfin_rtx_timer_;
};

/// Per-node MPTCP instance. Bridges the host mobility manager (address
/// change notifications) to every connection's path manager.
class MptcpStack {
 public:
  /// Should-be-impossible protocol states, counted instead of asserted so
  /// the check layer can turn them into invariant violations in any build.
  /// All counters stay 0 on a correct stack; there is no legitimate path
  /// that increments them.
  struct SanityCounters {
    /// Payload bytes surfaced by a subflow already marked dead.
    std::uint64_t data_on_dead_subflow = 0;
    /// DATA records carrying bytes past the peer's announced DATA_FIN.
    std::uint64_t data_past_fin = 0;
    /// Cumulative DATA_ACKs acknowledging sequence space never sent
    /// (connection-level sequence-space conservation).
    std::uint64_t ack_beyond_sent = 0;

    std::uint64_t total() const {
      return data_on_dead_subflow + data_past_fin + ack_beyond_sent;
    }
  };

  MptcpStack(net::Node& node, TcpStack& tcp, MptcpConfig config = {});
  ~MptcpStack();

  MptcpStack(const MptcpStack&) = delete;
  MptcpStack& operator=(const MptcpStack&) = delete;

  /// Active open (the UE side).
  std::shared_ptr<MptcpSocket> connect(net::EndPoint remote,
                                       net::Ipv4Addr local_addr = net::Ipv4Addr{});

  /// Passive open (the server side).
  using AcceptCallback = std::function<void(std::shared_ptr<MptcpSocket>)>;
  void listen(std::uint16_t port, AcceptCallback on_accept);

  /// Host mobility integration: the device's address went away (detach) —
  /// subflows using it are dead, the 60 s watch starts.
  void notify_address_invalidated(net::Ipv4Addr addr);
  /// A new address is available (attach complete): after the configured
  /// wait period each connection opens a replacement subflow.
  void notify_address_available(net::Ipv4Addr addr);

  TcpStack& tcp() { return tcp_; }
  sim::Simulator& simulator() { return node_.simulator(); }
  const MptcpConfig& config() const { return config_; }
  const SanityCounters& sanity() const { return sanity_; }

 private:
  friend class MptcpSocket;

  void register_connection(const std::shared_ptr<MptcpSocket>& conn);
  void deregister_connection(std::uint64_t token);
  /// Emit a cumulative DATA_ACK datagram toward `to` for `token`.
  void send_dack_datagram(net::EndPoint from, net::EndPoint to, std::uint64_t token,
                          std::uint64_t dack);
  void on_dack_datagram(const net::Packet& packet);
  std::uint64_t fresh_token();

  // Server-side subflows whose first record has not arrived yet.
  struct PendingSubflow {
    std::shared_ptr<TcpSocket> tcp;
    ByteQueue rx;
    std::uint16_t port;
  };
  void on_pending_data(const std::shared_ptr<PendingSubflow>& pending);

  net::Node& node_;
  TcpStack& tcp_;
  MptcpConfig config_;
  Rng rng_;
  SanityCounters sanity_;
  std::unordered_map<std::uint64_t, std::weak_ptr<MptcpSocket>> by_token_;
  std::unordered_map<std::uint16_t, AcceptCallback> listeners_;
};

}  // namespace cb::transport
