// The byte-stream socket interface shared by TCP and MPTCP.
//
// Applications (iperf, video, web) are written against this interface so the
// same workload runs unmodified over TCP (the paper's MNO baseline) or MPTCP
// (CellBricks) — mirroring how the paper runs unmodified apps because
// "MPTCP is largely backward compatible with the existing socket API".
#pragma once

#include <functional>
#include <string>

#include "common/bytes.hpp"

namespace cb::transport {

class StreamSocket {
 public:
  virtual ~StreamSocket() = default;

  /// Append up to `data.size()` bytes to the send buffer; returns how many
  /// were accepted (0 when the buffer is full — wait for on_send_space).
  virtual std::size_t send(BytesView data) = 0;

  /// Graceful close: queued data is flushed, then the peer sees EOF.
  virtual void close() = 0;

  /// Free bytes in the send buffer.
  virtual std::size_t send_space() const = 0;

  virtual bool connected() const = 0;

  /// Fired once the connection is established (client side).
  std::function<void()> on_connected;
  /// In-order received bytes.
  std::function<void(BytesView)> on_data;
  /// Send-buffer space became available after being full.
  std::function<void()> on_send_space;
  /// Connection ended; empty reason = graceful EOF after close.
  std::function<void(const std::string&)> on_closed;
};

}  // namespace cb::transport
