// FIFO byte buffer with random-access peek, used for TCP send/receive
// buffers (O(1) amortized pop_front, unlike a flat vector).
#pragma once

#include <cstdint>
#include <deque>

#include "common/bytes.hpp"

namespace cb::transport {

class ByteQueue {
 public:
  void append(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }

  /// Copy out `len` bytes starting `offset` bytes from the front (clamped to
  /// the available range).
  Bytes peek(std::size_t offset, std::size_t len) const {
    if (offset >= buf_.size()) return {};
    len = std::min(len, buf_.size() - offset);
    return Bytes(buf_.begin() + static_cast<std::ptrdiff_t>(offset),
                 buf_.begin() + static_cast<std::ptrdiff_t>(offset + len));
  }

  /// Discard `n` bytes from the front (clamped).
  void pop(std::size_t n) {
    n = std::min(n, buf_.size());
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  void clear() { buf_.clear(); }

 private:
  std::deque<std::uint8_t> buf_;
};

}  // namespace cb::transport
