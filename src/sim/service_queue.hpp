// A single-server FIFO service queue: models the serial processing capacity
// of a control-plane component (MME, HSS, brokerd). Used both to inject the
// calibrated per-message processing delays of Fig.7 and to produce queueing
// behaviour under attach storms (the scale benchmark).
#pragma once

#include <functional>

#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace cb::sim {

class ServiceQueue {
 public:
  explicit ServiceQueue(Simulator& sim) : sim_(sim) {}

  /// Run `fn` once all previously submitted work is done plus
  /// `service_time` of processing for this item.
  void submit(Duration service_time, std::function<void()> fn) {
    const TimePoint start = std::max(sim_.now(), busy_until_);
    busy_until_ = start + service_time;
    busy_total_ += service_time;
    ++jobs_;
    sim_.schedule_at(busy_until_, std::move(fn));
  }

  /// Cumulative processing time consumed (the "proc" bars of Fig.7).
  Duration busy_time() const { return busy_total_; }
  std::uint64_t jobs() const { return jobs_; }
  /// Queueing delay a job submitted now would experience before service.
  Duration backlog() const {
    return busy_until_ > sim_.now() ? busy_until_ - sim_.now() : Duration::zero();
  }

 private:
  Simulator& sim_;
  TimePoint busy_until_;
  Duration busy_total_ = Duration::zero();
  std::uint64_t jobs_ = 0;
};

}  // namespace cb::sim
