// Move-only callable with small-buffer optimization for simulator events.
//
// Every scheduled event used to carry a std::function (heap allocation for
// any capture list over two pointers) plus a shared_ptr<bool> cancellation
// flag (a second allocation). InplaceFn stores typical event closures —
// including a Link transmit lambda that captures a whole Packet — inline in
// the event pool slot, falling back to the heap only for outsized captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cb::sim {

class InplaceFn {
 public:
  // Sized so the largest hot-path closure (Link's propagation lambda
  // carrying a Packet by value) stays inline.
  static constexpr std::size_t kBufSize = 120;

  InplaceFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kBufSize && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InplaceFn(InplaceFn&& o) noexcept {
    if (o.ops_) {
      o.ops_->relocate(o.buf_, buf_);
      ops_ = o.ops_;
      o.ops_ = nullptr;
    }
  }

  InplaceFn& operator=(InplaceFn&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_) {
        o.ops_->relocate(o.buf_, buf_);
        ops_ = o.ops_;
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;

  ~InplaceFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the stored callable (and everything it captures) now.
  void reset() {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    // Move the callable from src storage into (uninitialized) dst storage
    // and destroy the src copy.
    void (*relocate)(unsigned char* src, unsigned char* dst);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](unsigned char* src, unsigned char* dst) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*s));
        s->~Fn();
      },
      [](unsigned char* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](unsigned char* src, unsigned char* dst) {
        Fn** s = std::launder(reinterpret_cast<Fn**>(src));
        ::new (static_cast<void*>(dst)) Fn*(*s);
      },
      [](unsigned char* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  alignas(std::max_align_t) unsigned char buf_[kBufSize];
  const Ops* ops_ = nullptr;
};

}  // namespace cb::sim
