// Deterministic fault injection for chaos experiments.
//
// A FaultPlan is a script of named faults on the simulated clock: windowed
// faults carry an `inject` action applied at the window start and a `heal`
// action applied when it closes; one-shot faults only inject. The plan is
// pure data — the actions are closures supplied by the embedding layer
// (scenario code binds them to links, nodes, bTelcos, brokers), which keeps
// this module free of any dependency above cb_common.
//
// A ChaosController schedules the plan's events on a Simulator and records
// an ordered log of every injection/heal. Because the simulator breaks
// timestamp ties by scheduling order, two runs of the same plan on the same
// seed replay bit-identically — the log doubles as a determinism witness.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace cb::sim {

/// One scripted fault. `duration` == zero means one-shot (no heal).
struct FaultSpec {
  std::string name;
  TimePoint start;
  Duration duration = Duration::zero();
  std::function<void()> inject;
  std::function<void()> heal;

  bool windowed() const { return duration > Duration::zero(); }
  TimePoint end() const { return start + duration; }
};

/// An ordered script of faults (builder-style API).
class FaultPlan {
 public:
  FaultPlan& add(FaultSpec spec);

  /// Fault that holds for [start, start + duration).
  FaultPlan& window(std::string name, TimePoint start, Duration duration,
                    std::function<void()> inject, std::function<void()> heal);

  /// One-shot fault fired at `at`.
  FaultPlan& at(std::string name, TimePoint when, std::function<void()> fire);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

  /// Instant the last scheduled action (inject or heal) runs; zero if empty.
  TimePoint last_event() const;

 private:
  std::vector<FaultSpec> specs_;
};

/// Applies a FaultPlan to a Simulator and journals what happened.
class ChaosController {
 public:
  struct LogEntry {
    TimePoint at;
    std::string what;  // "inject:<name>" or "heal:<name>"
  };

  ChaosController(Simulator& sim, FaultPlan plan);

  /// Schedule every event of the plan. Call once, before running the sim.
  void arm();

  /// Number of windowed faults currently held open.
  std::size_t active_faults() const { return active_count_; }
  /// True while the named windowed fault is injected but not yet healed.
  bool fault_active(const std::string& name) const;

  const std::vector<LogEntry>& log() const { return log_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void fire(const FaultSpec& spec, bool heal_phase);

  Simulator& sim_;
  FaultPlan plan_;
  bool armed_ = false;
  std::size_t active_count_ = 0;
  std::vector<std::string> active_;
  std::vector<LogEntry> log_;
};

}  // namespace cb::sim
