#include "sim/fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace cb::sim {

FaultPlan& FaultPlan::add(FaultSpec spec) {
  specs_.push_back(std::move(spec));
  return *this;
}

FaultPlan& FaultPlan::window(std::string name, TimePoint start, Duration duration,
                             std::function<void()> inject, std::function<void()> heal) {
  return add(FaultSpec{std::move(name), start, duration, std::move(inject), std::move(heal)});
}

FaultPlan& FaultPlan::at(std::string name, TimePoint when, std::function<void()> fire) {
  return add(FaultSpec{std::move(name), when, Duration::zero(), std::move(fire), nullptr});
}

TimePoint FaultPlan::last_event() const {
  TimePoint last = TimePoint::zero();
  for (const FaultSpec& s : specs_) last = std::max(last, s.windowed() ? s.end() : s.start);
  return last;
}

ChaosController::ChaosController(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)) {}

void ChaosController::arm() {
  if (armed_) throw std::logic_error("ChaosController::arm called twice");
  armed_ = true;
  // Index-based capture: specs_ never changes after arm().
  for (std::size_t i = 0; i < plan_.specs().size(); ++i) {
    const FaultSpec& spec = plan_.specs()[i];
    sim_.schedule_at(spec.start, [this, i] { fire(plan_.specs()[i], /*heal_phase=*/false); });
    if (spec.windowed()) {
      sim_.schedule_at(spec.end(), [this, i] { fire(plan_.specs()[i], /*heal_phase=*/true); });
    }
  }
}

void ChaosController::fire(const FaultSpec& spec, bool heal_phase) {
  if (heal_phase) {
    if (spec.heal) spec.heal();
    auto it = std::find(active_.begin(), active_.end(), spec.name);
    if (it != active_.end()) {
      active_.erase(it);
      --active_count_;
    }
    log_.push_back({sim_.now(), "heal:" + spec.name});
  } else {
    if (spec.inject) spec.inject();
    if (spec.windowed()) {
      active_.push_back(spec.name);
      ++active_count_;
    }
    log_.push_back({sim_.now(), "inject:" + spec.name});
  }
}

bool ChaosController::fault_active(const std::string& name) const {
  return std::find(active_.begin(), active_.end(), name) != active_.end();
}

}  // namespace cb::sim
