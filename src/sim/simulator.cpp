#include "sim/simulator.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace cb::sim {

namespace {
// The most recently constructed simulator feeds the logger's time prefix.
Simulator* g_active = nullptr;
TimePoint log_now() { return g_active ? g_active->now() : TimePoint::zero(); }
}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  g_active = this;
  log_detail::set_time_source(&log_now);
}

Simulator::~Simulator() {
  if (g_active == this) {
    g_active = nullptr;
    log_detail::set_time_source(nullptr);
  }
}

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) throw std::invalid_argument("schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(fn), cancelled});
  return EventHandle{std::move(cancelled)};
}

bool Simulator::step(const TimePoint* deadline) {
  while (!queue_.empty()) {
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (deadline && queue_.top().at > *deadline) return false;
    // priority_queue::top is const; the event is copied out then popped.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    *ev.cancelled = true;  // mark fired so handles report non-pending
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step(nullptr)) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  while (step(&deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_for(Duration d) { run_until(now_ + d); }

}  // namespace cb::sim
