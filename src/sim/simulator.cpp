#include "sim/simulator.hpp"

#include "common/log.hpp"

namespace cb::sim {

namespace {
// The most recently constructed simulator on THIS thread feeds the logger's
// time prefix. thread_local so independent engines can run concurrently on
// worker threads (parallel sweep runner) without touching each other.
thread_local Simulator* g_active = nullptr;
TimePoint log_now() { return g_active ? g_active->now() : TimePoint::zero(); }
}  // namespace

Simulator::Simulator(std::uint64_t seed)
    : pool_(std::make_shared<detail::EventPool>()), rng_(seed) {
  g_active = this;
  log_detail::set_time_source(&log_now);
}

Simulator::~Simulator() {
  if (g_active == this) {
    g_active = nullptr;
    log_detail::set_time_source(nullptr);
  }
  // Destroy all outstanding closures and invalidate handles: a closure must
  // not outlive the simulator (it may capture shared_ptrs keeping whole
  // node graphs alive), and a handle surviving past this point must report
  // non-pending rather than touch freed state.
  for (auto& slot : pool_->slots) {
    ++slot.gen;
    slot.fn.reset();
  }
}

void EventHandle::cancel() {
  if (!pool_) return;
  auto& slot = pool_->slots[slot_];
  if (slot.gen != gen_) return;  // already fired or cancelled
  ++slot.gen;
  pool_->release(slot_);  // destroys the closure eagerly
}

bool EventHandle::pending() const { return pool_ && pool_->slots[slot_].gen == gen_; }

bool Simulator::step(const TimePoint* deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (pool_->slots[top.slot].gen != top.gen) {
      queue_.pop();  // cancelled: the closure was already released
      continue;
    }
    if (deadline && top.at > *deadline) return false;
    const Event ev = top;
    queue_.pop();
#ifndef CB_CHECK_COMPILED_OUT
    if (probe_) {
      ++probe_->executed;
      if (ev.at < now_) ++probe_->past_events;
      if (ev.at < probe_->last_pop) ++probe_->order_regressions;
      probe_->last_pop = ev.at;
    }
#endif
    now_ = ev.at;
    auto& slot = pool_->slots[ev.slot];
    InplaceFn fn = std::move(slot.fn);
    ++slot.gen;  // mark fired so handles report non-pending (even inside fn)
    pool_->release(ev.slot);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step(nullptr)) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  while (step(&deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_for(Duration d) { run_until(now_ + d); }

}  // namespace cb::sim
