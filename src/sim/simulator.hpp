// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and an ordered queue of callbacks.
// Everything else in the repo — links, TCP timers, attach procedures, app
// workloads — schedules work through it. Events at equal timestamps run in
// scheduling order (a monotonic sequence number breaks ties), so runs are
// deterministic for a fixed seed.
//
// Storage layout: callables live in a slab-allocated pool of fixed-size
// slots (small-buffer optimized, see inplace_fn.hpp) and the priority queue
// holds only {time, seq, slot, generation} records. Cancellation bumps the
// slot's generation counter and destroys the callable eagerly — a cancelled
// closure releases everything it captured immediately, not when its
// timestamp would have popped.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/inplace_fn.hpp"

namespace cb::sim {

class Simulator;

namespace detail {

/// Slab of event slots. Shared (via shared_ptr) between the simulator and
/// outstanding EventHandles so a handle can still answer pending()/cancel()
/// safely after the simulator is destroyed.
struct EventPool {
  struct Slot {
    std::uint64_t gen = 0;  // bumped on fire/cancel; handles compare against it
    InplaceFn fn;
  };

  std::vector<Slot> slots;
  std::vector<std::uint32_t> free_list;

  std::uint32_t acquire(InplaceFn fn) {
    std::uint32_t idx;
    if (!free_list.empty()) {
      idx = free_list.back();
      free_list.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slots.size());
      slots.emplace_back();
    }
    slots[idx].fn = std::move(fn);
    return idx;
  }

  void release(std::uint32_t idx) {
    slots[idx].fn.reset();
    free_list.push_back(idx);
  }
};

}  // namespace detail

/// Cancellation handle for a scheduled event. Cheap to copy; cancelling an
/// already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  /// Prevent the event from firing (if it has not already). The event's
  /// closure is destroyed immediately.
  void cancel();
  /// True if the event is still pending.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<detail::EventPool> pool, std::uint32_t slot, std::uint64_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::EventPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

/// Engine-health observation point for the invariant checker (src/check).
/// A Simulator carries an optional probe pointer; when none is installed the
/// per-event cost is one predictable null-check branch (the same contract as
/// the obs layer's handles), and CB_CHECK_COMPILED_OUT removes even that.
/// The probe only *counts* — it never mutates engine state — so installing
/// one cannot perturb event order or the chaos golden fingerprints.
struct EngineProbe {
  /// Events executed while the probe was installed.
  std::uint64_t executed = 0;
  /// Events that popped with a timestamp below the clock at pop time (the
  /// heap or the scheduling guard is broken if this ever moves).
  std::uint64_t past_events = 0;
  /// Pops whose timestamp was below the previous pop's (heap monotonicity).
  std::uint64_t order_regressions = 0;
  TimePoint last_pop;
};

/// The event engine. Not thread-safe; a whole experiment runs on one engine.
/// Independent engines on different threads are fine (the logger's time
/// source is thread-local), which is what the parallel trial-runner uses.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// The engine's root RNG; components should `fork()` children from it.
  Rng& rng() { return rng_; }

  /// Run `fn` after `delay`. Returns a handle that can cancel it.
  template <typename F>
  EventHandle schedule(Duration delay, F&& fn) {
    if (delay < Duration::zero()) throw std::invalid_argument("schedule: negative delay");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Run `fn` at absolute time `at` (>= now).
  template <typename F>
  EventHandle schedule_at(TimePoint at, F&& fn) {
    if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
    const std::uint32_t slot = pool_->acquire(InplaceFn(std::forward<F>(fn)));
    const std::uint64_t gen = pool_->slots[slot].gen;
    queue_.push(Event{at, next_seq_++, slot, gen});
    return EventHandle{pool_, slot, gen};
  }

  /// Process events until the queue is empty.
  void run();
  /// Process events with timestamps <= deadline; the clock ends at
  /// `deadline` even if the queue drains early.
  void run_until(TimePoint deadline);
  /// Convenience: run_until(now + d).
  void run_for(Duration d);

  /// Number of events executed so far (for tests/debug).
  std::uint64_t events_executed() const { return executed_; }

  /// Install (or remove, with nullptr) the engine-health probe. The caller
  /// keeps ownership; the probe must outlive the simulator or be removed
  /// first. No-op under CB_CHECK_COMPILED_OUT.
  void set_probe(EngineProbe* probe) {
#ifndef CB_CHECK_COMPILED_OUT
    probe_ = probe;
    if (probe_) probe_->last_pop = now_;
#else
    (void)probe;
#endif
  }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t gen;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Execute one event (skipping cancelled ones); false if nothing ran.
  // With a deadline, events after it stay queued and false is returned.
  bool step(const TimePoint* deadline);

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::shared_ptr<detail::EventPool> pool_;
  Rng rng_;
#ifndef CB_CHECK_COMPILED_OUT
  EngineProbe* probe_ = nullptr;
#endif
};

}  // namespace cb::sim
