// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and an ordered queue of callbacks.
// Everything else in the repo — links, TCP timers, attach procedures, app
// workloads — schedules work through it. Events at equal timestamps run in
// scheduling order (a monotonic sequence number breaks ties), so runs are
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace cb::sim {

class Simulator;

/// Cancellation handle for a scheduled event. Cheap to copy; cancelling an
/// already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  /// Prevent the event from firing (if it has not already).
  void cancel();
  /// True if the event is still pending.
  bool pending() const;

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event engine. Not thread-safe; a whole experiment runs on one engine.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// The engine's root RNG; components should `fork()` children from it.
  Rng& rng() { return rng_; }

  /// Run `fn` after `delay`. Returns a handle that can cancel it.
  EventHandle schedule(Duration delay, std::function<void()> fn);
  /// Run `fn` at absolute time `at` (>= now).
  EventHandle schedule_at(TimePoint at, std::function<void()> fn);

  /// Process events until the queue is empty.
  void run();
  /// Process events with timestamps <= deadline; the clock ends at
  /// `deadline` even if the queue drains early.
  void run_until(TimePoint deadline);
  /// Convenience: run_until(now + d).
  void run_for(Duration d);

  /// Number of events executed so far (for tests/debug).
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Execute one event (skipping cancelled ones); false if nothing ran.
  // With a deadline, events after it stay queued and false is returned.
  bool step(const TimePoint* deadline);

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

}  // namespace cb::sim
