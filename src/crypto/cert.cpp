#include "crypto/cert.hpp"

#include <algorithm>

namespace cb::crypto {

Bytes Certificate::to_be_signed() const {
  ByteWriter w;
  w.str(subject_);
  w.bytes(key_.serialize());
  w.str(issuer_);
  w.u64(static_cast<std::uint64_t>(not_before_.nanos()));
  w.u64(static_cast<std::uint64_t>(not_after_.nanos()));
  return w.take();
}

Bytes Certificate::serialize() const {
  ByteWriter w;
  w.bytes(to_be_signed());
  w.bytes(signature_);
  return w.take();
}

Result<Certificate> Certificate::deserialize(BytesView data) {
  try {
    ByteReader outer(data);
    const Bytes tbs = outer.bytes();
    Bytes signature = outer.bytes();

    ByteReader r(tbs);
    std::string subject = r.str();
    auto key = RsaPublicKey::deserialize(r.bytes());
    if (!key) return Result<Certificate>::err("cert: " + key.error());
    std::string issuer = r.str();
    const auto not_before = TimePoint::from_nanos(static_cast<std::int64_t>(r.u64()));
    const auto not_after = TimePoint::from_nanos(static_cast<std::int64_t>(r.u64()));
    return Certificate(std::move(subject), key.take(), std::move(issuer), not_before,
                       not_after, std::move(signature));
  } catch (const std::out_of_range&) {
    return Result<Certificate>::err("cert: truncated");
  }
}

CertificateAuthority::CertificateAuthority(std::string name, Rng& rng, std::size_t modulus_bits)
    : name_(std::move(name)), keys_(RsaKeyPair::generate(rng, modulus_bits)) {}

Certificate CertificateAuthority::issue(const std::string& subject, const RsaPublicKey& key,
                                        TimePoint not_before, TimePoint not_after) const {
  Certificate cert(subject, key, name_, not_before, not_after, {});
  cert.signature_ = keys_.sign(cert.to_be_signed());
  return cert;
}

void CertificateAuthority::revoke(const std::string& subject) {
  if (!is_revoked(subject)) revoked_.push_back(subject);
}

bool CertificateAuthority::is_revoked(const std::string& subject) const {
  return std::find(revoked_.begin(), revoked_.end(), subject) != revoked_.end();
}

Status CertificateAuthority::validate(const Certificate& cert, TimePoint now) const {
  if (cert.issuer() != name_) return Status::err("cert: unknown issuer " + cert.issuer());
  if (!verify_signature(cert, public_key())) return Status::err("cert: bad signature");
  if (now < cert.not_before() || now > cert.not_after()) return Status::err("cert: expired");
  if (is_revoked(cert.subject())) return Status::err("cert: revoked");
  return Status::ok();
}

bool CertificateAuthority::verify_signature(const Certificate& cert, const RsaPublicKey& ca_key) {
  return ca_key.verify(cert.to_be_signed(), cert.signature());
}

}  // namespace cb::crypto
