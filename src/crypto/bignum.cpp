#include "crypto/bignum.hpp"

#include <algorithm>
#include <stdexcept>

namespace cb::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;

// Small primes for trial division before Miller-Rabin.
constexpr std::uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
    293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383,
    389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467};
}  // namespace

BigNum::BigNum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigNum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes_be(BytesView data) {
  BigNum out;
  out.limbs_.assign((data.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::size_t byte_index = data.size() - 1 - i;  // significance
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(data[byte_index]) << ((i % 4) * 8);
  }
  out.trim();
  return out;
}

Bytes BigNum::to_bytes_be() const {
  if (is_zero()) return {};
  const std::size_t nbytes = (bit_length() + 7) / 8;
  return to_bytes_be(nbytes);
}

Bytes BigNum::to_bytes_be(std::size_t width) const {
  if (bit_length() > width * 8) throw std::invalid_argument("BigNum: value wider than requested");
  Bytes out(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t limb = i / 4;
    if (limb >= limbs_.size()) break;
    out[width - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> ((i % 4) * 8));
  }
  return out;
}

std::size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigNum::compare(const BigNum& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigNum BigNum::operator+(const BigNum& o) const {
  BigNum out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigNum BigNum::sub_unchecked(const BigNum& a, const BigNum& b) {
  BigNum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator-(const BigNum& o) const {
  if (*this < o) throw std::invalid_argument("BigNum: negative subtraction");
  return sub_unchecked(*this, o);
}

BigNum BigNum::operator*(const BigNum& o) const {
  if (is_zero() || o.is_zero()) return BigNum{};
  BigNum out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = limbs_[i];
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[i + j]) + ai * o.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigNum BigNum::operator<<(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return {};
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

DivMod BigNum::divmod(const BigNum& divisor) const {
  if (divisor.is_zero()) throw std::invalid_argument("BigNum: division by zero");
  if (*this < divisor) return {BigNum{}, *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigNum q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = rem << 32 | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigNum{rem}};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, making the quotient estimate off by at most 2.
  const std::size_t shift = 32 - (divisor.bit_length() % 32 == 0 ? 32 : divisor.bit_length() % 32);
  const BigNum u_norm = *this << shift;
  const BigNum v_norm = divisor << shift;
  const std::size_t n = v_norm.limbs_.size();
  const std::size_t m = u_norm.limbs_.size() - n;

  std::vector<std::uint32_t> u(u_norm.limbs_);
  u.push_back(0);  // u has m+n+1 limbs
  const std::vector<std::uint32_t>& v = v_norm.limbs_;

  BigNum q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t numer = (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numer / v[n - 1];
    std::uint64_t rhat = numer % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract qhat * v from u[j..j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) - static_cast<std::int64_t>(p & 0xFFFFFFFF) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add back.
      t += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum = static_cast<std::uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<std::uint32_t>(sum);
        c = sum >> 32;
      }
      t += static_cast<std::int64_t>(c);
      t &= static_cast<std::int64_t>(0xFFFFFFFF);
    }
    u[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigNum r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> shift;
  return {q, r};
}

BigNum BigNum::powmod(const BigNum& exponent, const BigNum& m) const {
  if (m.is_zero()) throw std::invalid_argument("BigNum: powmod modulus zero");
  if (m.is_odd() && m > BigNum{1}) return Montgomery(m).pow(*this, exponent);
  return powmod_reference(exponent, m);
}

BigNum BigNum::powmod_reference(const BigNum& exponent, const BigNum& m) const {
  if (m.is_zero()) throw std::invalid_argument("BigNum: powmod modulus zero");
  BigNum result{1};
  BigNum base = this->mod(m);
  const std::size_t nbits = exponent.bit_length();
  for (std::size_t i = 0; i < nbits; ++i) {
    if (exponent.bit(i)) result = (result * base).mod(m);
    base = (base * base).mod(m);
  }
  return result;
}

Montgomery::Limbs Montgomery::to_limbs(const BigNum& v, std::size_t s) {
  Limbs out(s, 0);
  for (std::size_t i = 0; i < v.limbs_.size(); ++i) {
    out[i / 2] |= static_cast<std::uint64_t>(v.limbs_[i]) << (32 * (i % 2));
  }
  return out;
}

BigNum Montgomery::from_limbs(const Limbs& v) {
  BigNum out;
  out.limbs_.resize(v.size() * 2, 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    out.limbs_[2 * i] = static_cast<std::uint32_t>(v[i]);
    out.limbs_[2 * i + 1] = static_cast<std::uint32_t>(v[i] >> 32);
  }
  out.trim();
  return out;
}

Montgomery::Montgomery(const BigNum& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || !(modulus > BigNum{1})) {
    throw std::invalid_argument("Montgomery: modulus must be odd and > 1");
  }
  const std::size_t s = (modulus.limbs_.size() + 1) / 2;
  n_ = to_limbs(modulus, s);

  // n0inv = -n^-1 mod 2^64 by Newton iteration: for odd x, x is its own
  // inverse mod 8, and each step doubles the number of correct bits
  // (3 -> 6 -> 12 -> 24 -> 48 -> 96 covers 64).
  std::uint64_t inv = n_[0];
  for (int i = 0; i < 5; ++i) inv *= 2u - n_[0] * inv;
  n0inv_ = ~inv + 1u;  // -inv mod 2^64

  // R^2 mod n where R = 2^(64s): one big division at setup time.
  rr_ = to_limbs((BigNum{1} << (128 * s)).mod(modulus), s);
}

void Montgomery::mul(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out) const {
  // CIOS (coarsely integrated operand scanning): interleave the multiply
  // by b[i] with the Montgomery reduction step, keeping the accumulator at
  // s+2 limbs. All terms fit in 128 bits: (2^64-1)^2 + 2*(2^64-1) = 2^128-1.
  using u128 = unsigned __int128;
  const std::size_t s = n_.size();
  // Stack scratch for every practical modulus (<= 2048 bits); the CIOS
  // accumulator needs s+2 limbs and a heap allocation per multiply would
  // dominate small-exponent exponentiations.
  std::uint64_t stack_buf[34];
  Limbs heap_buf;
  std::uint64_t* t = stack_buf;
  if (s + 2 > 34) {
    heap_buf.assign(s + 2, 0);
    t = heap_buf.data();
  } else {
    std::fill(stack_buf, stack_buf + s + 2, 0u);
  }
  for (std::size_t i = 0; i < s; ++i) {
    const u128 bi = b[i];
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const u128 cur = t[j] + a[j] * bi + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[s]) + carry;
    t[s] = static_cast<std::uint64_t>(cur);
    t[s + 1] = static_cast<std::uint64_t>(cur >> 64);

    const u128 m = t[0] * n0inv_;  // low 64 bits only
    const std::uint64_t m64 = static_cast<std::uint64_t>(m);
    carry = static_cast<std::uint64_t>((t[0] + static_cast<u128>(m64) * n_[0]) >> 64);
    for (std::size_t j = 1; j < s; ++j) {
      const u128 c2 = t[j] + static_cast<u128>(m64) * n_[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(c2);
      carry = static_cast<std::uint64_t>(c2 >> 64);
    }
    cur = static_cast<u128>(t[s]) + carry;
    t[s - 1] = static_cast<std::uint64_t>(cur);
    t[s] = t[s + 1] + static_cast<std::uint64_t>(cur >> 64);
    t[s + 1] = 0;
  }

  // Final conditional subtraction: result is in [0, 2n).
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = s; i-- > 0;) {
      if (t[i] != n_[i]) {
        ge = t[i] > n_[i];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < s; ++i) {
      const std::uint64_t ni = n_[i];
      const std::uint64_t ti = t[i];
      out[i] = ti - ni - borrow;
      borrow = (ti < ni + borrow) || (borrow && ni + borrow == 0) ? 1u : 0u;
    }
  } else {
    std::copy(t, t + s, out);
  }
}

BigNum Montgomery::pow(const BigNum& base, const BigNum& exponent) const {
  const std::size_t s = n_.size();

  if (exponent.is_zero()) return BigNum{1};  // modulus > 1, so 1 mod n = 1

  const Limbs base_n = to_limbs(base.mod(modulus_), s);

  // one = R mod n = mont(R^2, 1); computed as mont(rr_, unit).
  Limbs unit(s, 0);
  unit[0] = 1;
  Limbs one(s, 0);
  mul(rr_.data(), unit.data(), one.data());

  // Fixed 4-bit windows over a table of powers in Montgomery form; scan the
  // exponent from the most significant nibble down. The table is built only
  // up to the largest window value the exponent actually uses — a sparse
  // exponent like 65537 (nibbles 1,0,0,0,1) then costs one table entry
  // instead of fifteen.
  Limbs base_m(s, 0);
  mul(base_n.data(), rr_.data(), base_m.data());

  const std::size_t nbits = exponent.bit_length();
  const std::size_t nwindows = (nbits + 3) / 4;
  std::uint32_t max_window = 1;
  for (std::size_t w = 0; w < nwindows; ++w) {
    std::uint32_t window = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      if (exponent.bit(w * 4 + b)) window |= 1u << b;
    }
    max_window = std::max(max_window, window);
  }

  std::vector<Limbs> table(max_window + 1, Limbs(s, 0));
  table[0] = one;
  table[1] = base_m;
  for (std::size_t k = 2; k <= max_window; ++k) {
    mul(table[k - 1].data(), base_m.data(), table[k].data());
  }
  Limbs acc = one;
  Limbs tmp(s, 0);
  for (std::size_t w = nwindows; w-- > 0;) {
    if (w + 1 != nwindows) {
      for (int sq = 0; sq < 4; ++sq) {
        mul(acc.data(), acc.data(), tmp.data());
        std::swap(acc, tmp);
      }
    }
    std::uint32_t window = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      if (exponent.bit(w * 4 + b)) window |= 1u << b;
    }
    if (window != 0) {
      mul(acc.data(), table[window].data(), tmp.data());
      std::swap(acc, tmp);
    }
  }

  // Leave Montgomery form: mont(acc, 1).
  Limbs result(s, 0);
  mul(acc.data(), unit.data(), result.data());
  return from_limbs(result);
}

std::uint32_t BigNum::mod_u32(std::uint32_t m) const {
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs_[i]) % m;
  }
  return static_cast<std::uint32_t>(rem);
}

std::string BigNum::to_string_hex() const {
  if (is_zero()) return "0";
  return to_hex(to_bytes_be());
}

BigNum BigNum::random_below(Rng& rng, const BigNum& bound) {
  if (bound.is_zero()) throw std::invalid_argument("BigNum: random_below(0)");
  const std::size_t nbits = bound.bit_length();
  const std::size_t nbytes = (nbits + 7) / 8;
  // Mask the top byte to the bound's bit width so rejection is rare.
  const std::uint8_t top_mask =
      static_cast<std::uint8_t>((1u << (nbits % 8 == 0 ? 8 : nbits % 8)) - 1);
  for (;;) {
    Bytes bytes = rng.random_bytes(nbytes);
    bytes[0] &= top_mask;
    BigNum candidate = from_bytes_be(bytes);
    if (candidate < bound) return candidate;
  }
}

BigNum BigNum::random_odd(Rng& rng, std::size_t bits) {
  if (bits < 2) throw std::invalid_argument("BigNum: random_odd needs >= 2 bits");
  Bytes bytes = rng.random_bytes((bits + 7) / 8);
  // Force exact bit length and oddness.
  const std::size_t top_bit = (bits - 1) % 8;
  bytes[0] &= static_cast<std::uint8_t>((1u << (top_bit + 1)) - 1);
  bytes[0] |= static_cast<std::uint8_t>(1u << top_bit);
  bytes.back() |= 1;
  return from_bytes_be(bytes);
}

BigNum BigNum::gcd(BigNum a, BigNum b) {
  while (!b.is_zero()) {
    BigNum r = a.mod(b);
    a = b;
    b = r;
  }
  return a;
}

BigNum BigNum::modinv(const BigNum& a, const BigNum& m) {
  // Extended Euclid on non-negative values, tracking coefficients with signs.
  BigNum old_r = a.mod(m), r = m;
  BigNum old_s{1}, s{};
  bool old_s_neg = false, s_neg = false;
  while (!r.is_zero()) {
    const DivMod dm = old_r.divmod(r);
    const BigNum q = dm.quotient;
    old_r = r;
    r = dm.remainder;

    // new_s = old_s - q * s (with sign tracking)
    BigNum qs = q * s;
    BigNum new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_s = s;
    old_s_neg = s_neg;
    s = new_s;
    s_neg = new_s_neg;
  }
  if (!(old_r == BigNum{1})) return BigNum{};  // not invertible
  if (old_s_neg) return m - old_s.mod(m);
  return old_s.mod(m);
}

bool BigNum::is_probable_prime(const BigNum& n, Rng& rng, int rounds) {
  if (n < BigNum{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (n == BigNum{p}) return true;
    if (n.mod_u32(p) == 0) return false;
  }
  if (!n.is_odd()) return n == BigNum{2};

  // n - 1 = d * 2^s
  const BigNum n_minus_1 = n - BigNum{1};
  BigNum d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  const BigNum two{2};
  const BigNum n_minus_3 = n - BigNum{3};
  for (int round = 0; round < rounds; ++round) {
    const BigNum a = random_below(rng, n_minus_3) + two;  // in [2, n-2]
    BigNum x = a.powmod(d, n);
    if (x == BigNum{1} || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = (x * x).mod(n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigNum BigNum::generate_prime(Rng& rng, std::size_t bits) {
  for (;;) {
    BigNum candidate = random_odd(rng, bits);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace cb::crypto
