#include "crypto/bignum.hpp"

#include <algorithm>
#include <stdexcept>

namespace cb::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;

// Small primes for trial division before Miller-Rabin.
constexpr std::uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
    293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383,
    389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467};
}  // namespace

BigNum::BigNum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigNum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes_be(BytesView data) {
  BigNum out;
  out.limbs_.assign((data.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::size_t byte_index = data.size() - 1 - i;  // significance
    out.limbs_[i / 4] |= static_cast<std::uint32_t>(data[byte_index]) << ((i % 4) * 8);
  }
  out.trim();
  return out;
}

Bytes BigNum::to_bytes_be() const {
  if (is_zero()) return {};
  const std::size_t nbytes = (bit_length() + 7) / 8;
  return to_bytes_be(nbytes);
}

Bytes BigNum::to_bytes_be(std::size_t width) const {
  if (bit_length() > width * 8) throw std::invalid_argument("BigNum: value wider than requested");
  Bytes out(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t limb = i / 4;
    if (limb >= limbs_.size()) break;
    out[width - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> ((i % 4) * 8));
  }
  return out;
}

std::size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigNum::compare(const BigNum& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigNum BigNum::operator+(const BigNum& o) const {
  BigNum out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigNum BigNum::sub_unchecked(const BigNum& a, const BigNum& b) {
  BigNum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator-(const BigNum& o) const {
  if (*this < o) throw std::invalid_argument("BigNum: negative subtraction");
  return sub_unchecked(*this, o);
}

BigNum BigNum::operator*(const BigNum& o) const {
  if (is_zero() || o.is_zero()) return BigNum{};
  BigNum out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = limbs_[i];
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[i + j]) + ai * o.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigNum BigNum::operator<<(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return {};
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

DivMod BigNum::divmod(const BigNum& divisor) const {
  if (divisor.is_zero()) throw std::invalid_argument("BigNum: division by zero");
  if (*this < divisor) return {BigNum{}, *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigNum q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = rem << 32 | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigNum{rem}};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, making the quotient estimate off by at most 2.
  const std::size_t shift = 32 - (divisor.bit_length() % 32 == 0 ? 32 : divisor.bit_length() % 32);
  const BigNum u_norm = *this << shift;
  const BigNum v_norm = divisor << shift;
  const std::size_t n = v_norm.limbs_.size();
  const std::size_t m = u_norm.limbs_.size() - n;

  std::vector<std::uint32_t> u(u_norm.limbs_);
  u.push_back(0);  // u has m+n+1 limbs
  const std::vector<std::uint32_t>& v = v_norm.limbs_;

  BigNum q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t numer = (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numer / v[n - 1];
    std::uint64_t rhat = numer % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract qhat * v from u[j..j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) - static_cast<std::int64_t>(p & 0xFFFFFFFF) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large: add back.
      t += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum = static_cast<std::uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<std::uint32_t>(sum);
        c = sum >> 32;
      }
      t += static_cast<std::int64_t>(c);
      t &= static_cast<std::int64_t>(0xFFFFFFFF);
    }
    u[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();

  BigNum r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> shift;
  return {q, r};
}

BigNum BigNum::powmod(const BigNum& exponent, const BigNum& m) const {
  if (m.is_zero()) throw std::invalid_argument("BigNum: powmod modulus zero");
  BigNum result{1};
  BigNum base = this->mod(m);
  const std::size_t nbits = exponent.bit_length();
  for (std::size_t i = 0; i < nbits; ++i) {
    if (exponent.bit(i)) result = (result * base).mod(m);
    base = (base * base).mod(m);
  }
  return result;
}

std::uint32_t BigNum::mod_u32(std::uint32_t m) const {
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs_[i]) % m;
  }
  return static_cast<std::uint32_t>(rem);
}

std::string BigNum::to_string_hex() const {
  if (is_zero()) return "0";
  return to_hex(to_bytes_be());
}

BigNum BigNum::random_below(Rng& rng, const BigNum& bound) {
  if (bound.is_zero()) throw std::invalid_argument("BigNum: random_below(0)");
  const std::size_t nbits = bound.bit_length();
  const std::size_t nbytes = (nbits + 7) / 8;
  // Mask the top byte to the bound's bit width so rejection is rare.
  const std::uint8_t top_mask =
      static_cast<std::uint8_t>((1u << (nbits % 8 == 0 ? 8 : nbits % 8)) - 1);
  for (;;) {
    Bytes bytes = rng.random_bytes(nbytes);
    bytes[0] &= top_mask;
    BigNum candidate = from_bytes_be(bytes);
    if (candidate < bound) return candidate;
  }
}

BigNum BigNum::random_odd(Rng& rng, std::size_t bits) {
  if (bits < 2) throw std::invalid_argument("BigNum: random_odd needs >= 2 bits");
  Bytes bytes = rng.random_bytes((bits + 7) / 8);
  // Force exact bit length and oddness.
  const std::size_t top_bit = (bits - 1) % 8;
  bytes[0] &= static_cast<std::uint8_t>((1u << (top_bit + 1)) - 1);
  bytes[0] |= static_cast<std::uint8_t>(1u << top_bit);
  bytes.back() |= 1;
  return from_bytes_be(bytes);
}

BigNum BigNum::gcd(BigNum a, BigNum b) {
  while (!b.is_zero()) {
    BigNum r = a.mod(b);
    a = b;
    b = r;
  }
  return a;
}

BigNum BigNum::modinv(const BigNum& a, const BigNum& m) {
  // Extended Euclid on non-negative values, tracking coefficients with signs.
  BigNum old_r = a.mod(m), r = m;
  BigNum old_s{1}, s{};
  bool old_s_neg = false, s_neg = false;
  while (!r.is_zero()) {
    const DivMod dm = old_r.divmod(r);
    const BigNum q = dm.quotient;
    old_r = r;
    r = dm.remainder;

    // new_s = old_s - q * s (with sign tracking)
    BigNum qs = q * s;
    BigNum new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_s = s;
    old_s_neg = s_neg;
    s = new_s;
    s_neg = new_s_neg;
  }
  if (!(old_r == BigNum{1})) return BigNum{};  // not invertible
  if (old_s_neg) return m - old_s.mod(m);
  return old_s.mod(m);
}

bool BigNum::is_probable_prime(const BigNum& n, Rng& rng, int rounds) {
  if (n < BigNum{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (n == BigNum{p}) return true;
    if (n.mod_u32(p) == 0) return false;
  }
  if (!n.is_odd()) return n == BigNum{2};

  // n - 1 = d * 2^s
  const BigNum n_minus_1 = n - BigNum{1};
  BigNum d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  const BigNum two{2};
  const BigNum n_minus_3 = n - BigNum{3};
  for (int round = 0; round < rounds; ++round) {
    const BigNum a = random_below(rng, n_minus_3) + two;  // in [2, n-2]
    BigNum x = a.powmod(d, n);
    if (x == BigNum{1} || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = (x * x).mod(n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigNum BigNum::generate_prime(Rng& rng, std::size_t bits) {
  for (;;) {
    BigNum candidate = random_odd(rng, bits);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace cb::crypto
