// Batch RSA signature screening for the broker's report/ticket queues.
//
// Verifying k signatures under one public key individually costs k modular
// exponentiations. The multiplicative screen costs ONE exponentiation plus
// 2(k-1) modular multiplications:
//
//   (prod_i sig_i)^e  ==  prod_i EMSA(H(m_i))    (mod n)
//
// If the batch passes, every signature is accepted; if it fails, the batch
// falls back to individual verification so exactly the bad indices are
// rejected. The screen is sound against the simulator's threat model
// (independent dishonest reporters forging their own signatures): a single
// invalid signature makes the products disagree with overwhelming
// probability. It is NOT a proof of each individual signature — colluding
// signers could craft multiplicatively-cancelling pairs — which is why
// brokerd keeps the batch path behind a config flag and DESIGN.md §14
// documents the trade.
#pragma once

#include <vector>

#include "crypto/rsa.hpp"

namespace cb::crypto {

class BatchVerifier {
 public:
  struct Job {
    RsaPublicKey key;
    Bytes message;
    Bytes signature;
  };

  /// `threads` = 0 or 1: serial. Larger: groups are screened by a worker
  /// pool; results are committed per-job into pre-assigned slots, so the
  /// output is identical at any thread count.
  explicit BatchVerifier(unsigned threads = 0) : threads_(threads) {}

  /// Verify every job; result i corresponds to jobs[i].
  std::vector<bool> verify_all(const std::vector<Job>& jobs) const;

  /// Counters for the bench/tests: how many exponentiations the last
  /// verify_all spent vs the k it would have spent individually.
  std::size_t last_exponentiations() const { return last_exponentiations_; }
  std::size_t last_fallbacks() const { return last_fallbacks_; }

 private:
  unsigned threads_;
  mutable std::size_t last_exponentiations_ = 0;
  mutable std::size_t last_fallbacks_ = 0;
};

}  // namespace cb::crypto
