#include "crypto/box.hpp"

#include <stdexcept>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"

namespace cb::crypto {

namespace {

// Derive independent cipher and MAC keys from one master secret.
struct SymKeys {
  Bytes enc;
  Bytes mac;
};

SymKeys derive(BytesView master) {
  return SymKeys{
      hkdf(to_bytes("cb-box-salt"), master, to_bytes("enc"), kChaChaKeySize),
      hkdf(to_bytes("cb-box-salt"), master, to_bytes("mac"), 32),
  };
}

Bytes sym_encrypt(const SymKeys& keys, BytesView nonce, BytesView plaintext) {
  return chacha20_xor(keys.enc, nonce, 1, plaintext);
}

Bytes mac_over(const SymKeys& keys, BytesView nonce, BytesView ciphertext) {
  ByteWriter w;
  w.raw(nonce);
  w.raw(ciphertext);
  return hmac_sha256(keys.mac, w.data());
}

}  // namespace

Bytes seal(const RsaPublicKey& recipient, BytesView plaintext, Rng& rng) {
  const Bytes master = rng.random_bytes(32);
  const SymKeys keys = derive(master);
  const Bytes nonce = rng.random_bytes(kChaChaNonceSize);

  auto wrapped = recipient.encrypt(master, rng);
  if (!wrapped) throw std::logic_error("seal: " + wrapped.error());

  const Bytes ciphertext = sym_encrypt(keys, nonce, plaintext);
  const Bytes mac = mac_over(keys, nonce, ciphertext);

  ByteWriter w;
  w.bytes(wrapped.value());
  w.raw(nonce);
  w.bytes(ciphertext);
  w.raw(mac);
  return w.take();
}

Result<Bytes> open(const RsaKeyPair& recipient, BytesView box) {
  try {
    ByteReader r(box);
    const Bytes wrapped = r.bytes();
    const Bytes nonce = r.raw(kChaChaNonceSize);
    const Bytes ciphertext = r.bytes();
    const Bytes mac = r.raw(32);
    if (!r.done()) return Result<Bytes>::err("open: trailing bytes");

    auto master = recipient.decrypt(wrapped);
    if (!master) return Result<Bytes>::err("open: " + master.error());
    const SymKeys keys = derive(master.value());
    if (!constant_time_equal(mac, mac_over(keys, nonce, ciphertext))) {
      return Result<Bytes>::err("open: MAC mismatch");
    }
    return chacha20_xor(keys.enc, nonce, 1, ciphertext);
  } catch (const std::out_of_range&) {
    return Result<Bytes>::err("open: truncated box");
  }
}

Bytes symmetric_seal(BytesView key, BytesView plaintext, Rng& rng) {
  const SymKeys keys = derive(key);
  const Bytes nonce = rng.random_bytes(kChaChaNonceSize);
  const Bytes ciphertext = sym_encrypt(keys, nonce, plaintext);
  const Bytes mac = mac_over(keys, nonce, ciphertext);
  ByteWriter w;
  w.raw(nonce);
  w.bytes(ciphertext);
  w.raw(mac);
  return w.take();
}

Result<Bytes> symmetric_open(BytesView key, BytesView box) {
  try {
    ByteReader r(box);
    const Bytes nonce = r.raw(kChaChaNonceSize);
    const Bytes ciphertext = r.bytes();
    const Bytes mac = r.raw(32);
    if (!r.done()) return Result<Bytes>::err("symmetric_open: trailing bytes");
    const SymKeys keys = derive(key);
    if (!constant_time_equal(mac, mac_over(keys, nonce, ciphertext))) {
      return Result<Bytes>::err("symmetric_open: MAC mismatch");
    }
    return chacha20_xor(keys.enc, nonce, 1, ciphertext);
  } catch (const std::out_of_range&) {
    return Result<Bytes>::err("symmetric_open: truncated box");
  }
}

}  // namespace cb::crypto
