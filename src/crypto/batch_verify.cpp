#include "crypto/batch_verify.hpp"

#include <atomic>
#include <map>
#include <thread>

namespace cb::crypto {
namespace {

// Screen one same-key group. Results land in pre-assigned slots of `out`
// (one writer per index), so worker threads need no synchronisation beyond
// the final join.
void verify_group(const std::vector<BatchVerifier::Job>& jobs,
                  const std::vector<std::size_t>& idx, std::vector<std::uint8_t>& out,
                  std::atomic<std::size_t>& expos, std::atomic<std::size_t>& fallbacks) {
  const RsaPublicKey& key = jobs[idx.front()].key;
  const BigNum& n = key.modulus();
  const std::size_t width = key.size_bytes();

  // Range checks first: a malformed signature is rejected outright and does
  // not poison the product for the rest of the group.
  std::vector<std::size_t> live;
  std::vector<BigNum> sigs;
  live.reserve(idx.size());
  sigs.reserve(idx.size());
  for (std::size_t i : idx) {
    const Bytes& sig = jobs[i].signature;
    if (sig.size() != width) continue;
    BigNum s = BigNum::from_bytes_be(sig);
    if (s >= n) continue;
    live.push_back(i);
    sigs.push_back(std::move(s));
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    out[live.front()] =
        key.verify(jobs[live.front()].message, jobs[live.front()].signature) ? 1 : 0;
    expos.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  BigNum sig_prod{1};
  BigNum block_prod{1};
  for (std::size_t j = 0; j < live.size(); ++j) {
    sig_prod = (sig_prod * sigs[j]).mod(n);
    const BigNum em =
        BigNum::from_bytes_be(pkcs1_signature_block(jobs[live[j]].message, width));
    block_prod = (block_prod * em).mod(n);
  }
  const BigNum lhs = sig_prod.powmod(key.exponent(), n);
  expos.fetch_add(1, std::memory_order_relaxed);
  if (lhs == block_prod) {
    for (std::size_t i : live) out[i] = 1;
    return;
  }

  // At least one signature in the group is bad; isolate it individually so
  // honest reporters in the same batch are not collateral damage.
  fallbacks.fetch_add(1, std::memory_order_relaxed);
  expos.fetch_add(live.size(), std::memory_order_relaxed);
  for (std::size_t i : live) {
    out[i] = key.verify(jobs[i].message, jobs[i].signature) ? 1 : 0;
  }
}

}  // namespace

std::vector<bool> BatchVerifier::verify_all(const std::vector<Job>& jobs) const {
  std::vector<std::uint8_t> out(jobs.size(), 0);

  // Group by serialized key; std::map keeps group order deterministic.
  std::map<Bytes, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].key.empty()) continue;  // out[i] stays 0
    groups[jobs[i].key.serialize()].push_back(i);
  }
  std::vector<const std::vector<std::size_t>*> order;
  order.reserve(groups.size());
  for (auto& [key_bytes, members] : groups) order.push_back(&members);

  std::atomic<std::size_t> expos{0};
  std::atomic<std::size_t> fallbacks{0};
  if (threads_ > 1 && order.size() > 1) {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t g = next.fetch_add(1, std::memory_order_relaxed);
        if (g >= order.size()) return;
        verify_group(jobs, *order[g], out, expos, fallbacks);
      }
    };
    const std::size_t nthreads = std::min<std::size_t>(threads_, order.size());
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  } else {
    for (const auto* g : order) verify_group(jobs, *g, out, expos, fallbacks);
  }
  last_exponentiations_ = expos.load();
  last_fallbacks_ = fallbacks.load();
  return {out.begin(), out.end()};
}

}  // namespace cb::crypto
