// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for message digests in SAP signatures, certificate fingerprints, and
// key derivation. Verified against NIST test vectors in tests/.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace cb::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();
  /// Absorb more input.
  void update(BytesView data);
  /// Finalize and return the 32-byte digest. The context must not be reused.
  Bytes finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot digest.
Bytes sha256(BytesView data);

/// Digest of the concatenation of two byte strings (avoids a copy at call
/// sites that hash header||payload).
Bytes sha256_concat(BytesView a, BytesView b);

}  // namespace cb::crypto
