// ChaCha20 stream cipher (RFC 8439 block function / counter mode).
//
// Provides the symmetric layer of the hybrid sealed box used by SAP and the
// billing protocol. Verified against the RFC 8439 test vector in tests/.
#pragma once

#include "common/bytes.hpp"

namespace cb::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

/// XOR `data` with the ChaCha20 keystream for (key, nonce) starting at block
/// `counter`. Encryption and decryption are the same operation.
Bytes chacha20_xor(BytesView key, BytesView nonce, std::uint32_t counter, BytesView data);

}  // namespace cb::crypto
