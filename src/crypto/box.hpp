// Hybrid sealed box: RSA-encrypt a fresh symmetric key, then
// ChaCha20-encrypt and HMAC the payload (encrypt-then-MAC).
//
// SAP messages from the UE to the broker and all traffic reports travel
// inside sealed boxes, so bTelcos in the middle can neither read nor forge
// them ("T never observes a cleartext identifier for U").
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/rsa.hpp"

namespace cb::crypto {

/// Encrypt `plaintext` so only the holder of the private half of
/// `recipient` can read it. Output layout:
///   [u32 len][rsa(sym_key)] [12B nonce] [ciphertext] [32B mac]
Bytes seal(const RsaPublicKey& recipient, BytesView plaintext, Rng& rng);

/// Open a sealed box; fails on any tampering.
Result<Bytes> open(const RsaKeyPair& recipient, BytesView box);

/// Symmetric-only authenticated encryption under an established shared
/// secret (used once the SAP security context exists).
Bytes symmetric_seal(BytesView key, BytesView plaintext, Rng& rng);
Result<Bytes> symmetric_open(BytesView key, BytesView box);

}  // namespace cb::crypto
