#include "crypto/chacha20.hpp"

#include <stdexcept>

namespace cb::crypto {

namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

std::uint32_t load32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

void chacha_block(const std::uint32_t state[16], std::uint8_t out[64]) {
  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state[i];
    out[i * 4] = static_cast<std::uint8_t>(v);
    out[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
    out[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
    out[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

Bytes chacha20_xor(BytesView key, BytesView nonce, std::uint32_t counter, BytesView data) {
  if (key.size() != kChaChaKeySize) throw std::invalid_argument("chacha20: bad key size");
  if (nonce.size() != kChaChaNonceSize) throw std::invalid_argument("chacha20: bad nonce size");

  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load32le(key.data() + i * 4);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32le(nonce.data() + i * 4);

  Bytes out(data.begin(), data.end());
  std::uint8_t keystream[64];
  for (std::size_t off = 0; off < out.size(); off += 64) {
    chacha_block(state, keystream);
    ++state[12];
    const std::size_t n = std::min<std::size_t>(64, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
  }
  return out;
}

}  // namespace cb::crypto
