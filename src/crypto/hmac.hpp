// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF derives the CellBricks security context from the SAP shared secret
// `ss`, mirroring how K_ASME seeds the LTE key hierarchy (NAS/AS keys).
#pragma once

#include "common/bytes.hpp"

namespace cb::crypto {

/// HMAC-SHA256 of `data` under `key`.
Bytes hmac_sha256(BytesView key, BytesView data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: derive `length` bytes from `prk` bound to `info`.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

}  // namespace cb::crypto
