// Minimal PKI: certificates binding a subject name to an RSA public key,
// signed by a certificate authority.
//
// The paper assumes "B and T keys are signed by a Certificate Authority" and
// distributed "using standard PKI techniques, akin to existing Internet
// services". Brokers and bTelcos carry these certs; UE keys are issued by
// the broker directly and need no certificate.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/time.hpp"
#include "crypto/rsa.hpp"

namespace cb::crypto {

/// A signed (subject, public key, validity) binding.
class Certificate {
 public:
  Certificate() = default;
  Certificate(std::string subject, RsaPublicKey key, std::string issuer,
              TimePoint not_before, TimePoint not_after, Bytes signature)
      : subject_(std::move(subject)),
        key_(std::move(key)),
        issuer_(std::move(issuer)),
        not_before_(not_before),
        not_after_(not_after),
        signature_(std::move(signature)) {}

  const std::string& subject() const { return subject_; }
  const RsaPublicKey& key() const { return key_; }
  const std::string& issuer() const { return issuer_; }
  TimePoint not_before() const { return not_before_; }
  TimePoint not_after() const { return not_after_; }
  bool empty() const { return key_.empty(); }

  /// The byte string the CA signs (everything except the signature).
  Bytes to_be_signed() const;
  Bytes serialize() const;
  static Result<Certificate> deserialize(BytesView data);

  /// Check the CA signature, validity window, and revocation.
  friend class CertificateAuthority;
  const Bytes& signature() const { return signature_; }

 private:
  std::string subject_;
  RsaPublicKey key_;
  std::string issuer_;
  TimePoint not_before_;
  TimePoint not_after_;
  Bytes signature_;
};

/// Issues and validates certificates; maintains a revocation list.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, Rng& rng, std::size_t modulus_bits = 1024);

  const std::string& name() const { return name_; }
  const RsaPublicKey& public_key() const { return keys_.public_key(); }

  /// Issue a certificate for `subject` valid over [not_before, not_after].
  Certificate issue(const std::string& subject, const RsaPublicKey& key,
                    TimePoint not_before, TimePoint not_after) const;

  /// Revoke by subject name (simulating a CRL entry).
  void revoke(const std::string& subject);
  bool is_revoked(const std::string& subject) const;

  /// Full validation against this CA at time `now`.
  Status validate(const Certificate& cert, TimePoint now) const;

  /// Signature-only check usable by parties that hold just the CA public
  /// key (no revocation knowledge) — what a bTelco in the field does.
  static bool verify_signature(const Certificate& cert, const RsaPublicKey& ca_key);

 private:
  std::string name_;
  RsaKeyPair keys_;
  std::vector<std::string> revoked_;
};

}  // namespace cb::crypto
