// Arbitrary-precision unsigned integers sized for RSA (512-2048 bit moduli).
//
// Little-endian 32-bit limbs with 64-bit intermediates; division is Knuth's
// Algorithm D so modular exponentiation stays fast enough for per-attachment
// signing in the simulator. Only the operations RSA needs are provided.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace cb::crypto {

class BigNum;

/// Quotient and remainder from BigNum::divmod.
struct DivMod;

/// Unsigned big integer.
class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(std::uint64_t v);

  /// Big-endian byte import/export (the wire format for keys/signatures).
  static BigNum from_bytes_be(BytesView data);
  Bytes to_bytes_be() const;
  /// Fixed-width big-endian export, left-padded with zeros; throws if the
  /// value does not fit.
  Bytes to_bytes_be(std::size_t width) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits.
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  int compare(const BigNum& o) const;
  bool operator==(const BigNum& o) const { return compare(o) == 0; }
  bool operator<(const BigNum& o) const { return compare(o) < 0; }
  bool operator<=(const BigNum& o) const { return compare(o) <= 0; }
  bool operator>(const BigNum& o) const { return compare(o) > 0; }
  bool operator>=(const BigNum& o) const { return compare(o) >= 0; }

  BigNum operator+(const BigNum& o) const;
  /// Requires *this >= o.
  BigNum operator-(const BigNum& o) const;
  BigNum operator*(const BigNum& o) const;
  BigNum operator<<(std::size_t bits) const;
  BigNum operator>>(std::size_t bits) const;

  /// Quotient and remainder; divisor must be nonzero.
  DivMod divmod(const BigNum& divisor) const;
  BigNum mod(const BigNum& m) const;

  /// (this ^ exponent) mod m, square-and-multiply.
  BigNum powmod(const BigNum& exponent, const BigNum& m) const;

  /// Remainder of division by a small value (used in prime sieving).
  std::uint32_t mod_u32(std::uint32_t m) const;

  std::string to_string_hex() const;

  /// Uniform random value in [0, bound).
  static BigNum random_below(Rng& rng, const BigNum& bound);
  /// Random odd integer with exactly `bits` bits (top bit set).
  static BigNum random_odd(Rng& rng, std::size_t bits);

  /// Greatest common divisor.
  static BigNum gcd(BigNum a, BigNum b);
  /// Modular inverse of a mod m (m > 1); returns zero if none exists.
  static BigNum modinv(const BigNum& a, const BigNum& m);

  /// Miller-Rabin with `rounds` random bases.
  static bool is_probable_prime(const BigNum& n, Rng& rng, int rounds = 24);
  /// Generate a random probable prime with exactly `bits` bits.
  static BigNum generate_prime(Rng& rng, std::size_t bits);

 private:
  void trim();
  static BigNum sub_unchecked(const BigNum& a, const BigNum& b);

  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

struct DivMod {
  BigNum quotient;
  BigNum remainder;
};

inline BigNum BigNum::mod(const BigNum& m) const { return divmod(m).remainder; }

}  // namespace cb::crypto
