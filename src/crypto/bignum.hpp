// Arbitrary-precision unsigned integers sized for RSA (512-2048 bit moduli).
//
// Little-endian 32-bit limbs with 64-bit intermediates; division is Knuth's
// Algorithm D so modular exponentiation stays fast enough for per-attachment
// signing in the simulator. Only the operations RSA needs are provided.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace cb::crypto {

class BigNum;
class Montgomery;

/// Quotient and remainder from BigNum::divmod.
struct DivMod;

/// Unsigned big integer.
class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(std::uint64_t v);

  /// Big-endian byte import/export (the wire format for keys/signatures).
  static BigNum from_bytes_be(BytesView data);
  Bytes to_bytes_be() const;
  /// Fixed-width big-endian export, left-padded with zeros; throws if the
  /// value does not fit.
  Bytes to_bytes_be(std::size_t width) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits.
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  int compare(const BigNum& o) const;
  bool operator==(const BigNum& o) const { return compare(o) == 0; }
  bool operator<(const BigNum& o) const { return compare(o) < 0; }
  bool operator<=(const BigNum& o) const { return compare(o) <= 0; }
  bool operator>(const BigNum& o) const { return compare(o) > 0; }
  bool operator>=(const BigNum& o) const { return compare(o) >= 0; }

  BigNum operator+(const BigNum& o) const;
  /// Requires *this >= o.
  BigNum operator-(const BigNum& o) const;
  BigNum operator*(const BigNum& o) const;
  BigNum operator<<(std::size_t bits) const;
  BigNum operator>>(std::size_t bits) const;

  /// Quotient and remainder; divisor must be nonzero.
  DivMod divmod(const BigNum& divisor) const;
  BigNum mod(const BigNum& m) const;

  /// (this ^ exponent) mod m. Odd moduli take the Montgomery fast path;
  /// even moduli fall back to square-and-multiply with Knuth division.
  BigNum powmod(const BigNum& exponent, const BigNum& m) const;

  /// Reference square-and-multiply implementation, kept as the even-modulus
  /// fallback and as the differential-test oracle for the Montgomery path.
  BigNum powmod_reference(const BigNum& exponent, const BigNum& m) const;

  /// Remainder of division by a small value (used in prime sieving).
  std::uint32_t mod_u32(std::uint32_t m) const;

  std::string to_string_hex() const;

  /// Uniform random value in [0, bound).
  static BigNum random_below(Rng& rng, const BigNum& bound);
  /// Random odd integer with exactly `bits` bits (top bit set).
  static BigNum random_odd(Rng& rng, std::size_t bits);

  /// Greatest common divisor.
  static BigNum gcd(BigNum a, BigNum b);
  /// Modular inverse of a mod m (m > 1); returns zero if none exists.
  static BigNum modinv(const BigNum& a, const BigNum& m);

  /// Miller-Rabin with `rounds` random bases.
  static bool is_probable_prime(const BigNum& n, Rng& rng, int rounds = 24);
  /// Generate a random probable prime with exactly `bits` bits.
  static BigNum generate_prime(Rng& rng, std::size_t bits);

 private:
  friend class Montgomery;

  void trim();
  static BigNum sub_unchecked(const BigNum& a, const BigNum& b);

  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

struct DivMod {
  BigNum quotient;
  BigNum remainder;
};

/// Precomputed Montgomery-form context for one odd modulus.
///
/// Construction pays one Knuth division (for R^2 mod n) plus a Newton
/// inversion of the low limb; every subsequent modular multiplication is a
/// single CIOS pass (interleaved multiply + reduce, no division at all).
/// RSA keys cache one of these per modulus so repeated sign/verify against
/// the same key amortizes the setup. Immutable after construction, so a
/// `const Montgomery` is safe to share across threads.
class Montgomery {
 public:
  /// Modulus must be odd and > 1; throws std::invalid_argument otherwise.
  explicit Montgomery(const BigNum& modulus);

  const BigNum& modulus() const { return modulus_; }

  /// (base ^ exponent) mod modulus via fixed 4-bit-window exponentiation.
  BigNum pow(const BigNum& base, const BigNum& exponent) const;

 private:
  // Internally the context works on 64-bit limbs (with 128-bit multiply
  // intermediates): one CIOS pass then does a quarter of the single-limb
  // multiply-accumulates the BigNum 32-bit representation would need.
  using Limbs = std::vector<std::uint64_t>;

  /// out = a * b * R^-1 mod n (CIOS). All operands are s limbs; `out` must
  /// not alias `a` or `b`.
  void mul(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out) const;

  static Limbs to_limbs(const BigNum& v, std::size_t s);  // zero-padded to s limbs
  static BigNum from_limbs(const Limbs& v);

  BigNum modulus_;
  Limbs n_;            // modulus limbs, length s
  Limbs rr_;           // R^2 mod n, zero-padded to s limbs
  std::uint64_t n0inv_ = 0;  // -n^-1 mod 2^64
};

inline BigNum BigNum::mod(const BigNum& m) const { return divmod(m).remainder; }

}  // namespace cb::crypto
