#include "crypto/hmac.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace cb::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;
}

Bytes hmac_sha256(BytesView key, BytesView data) {
  Bytes k(key.begin(), key.end());
  if (k.size() > kBlockSize) k = sha256(k);
  k.resize(kBlockSize, 0);

  Bytes ipad(kBlockSize), opad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  return sha256_concat(opad, sha256_concat(ipad, data));
}

Bytes hkdf_extract(BytesView salt, BytesView ikm) { return hmac_sha256(salt, ikm); }

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  Bytes out;
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    out.insert(out.end(), t.begin(), t.end());
  }
  out.resize(length);
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace cb::crypto
