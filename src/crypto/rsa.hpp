// RSA key generation, signatures, and encryption built on BigNum.
//
// Padding follows PKCS#1 v1.5 shapes (type-1 blocks for signatures, type-2
// for encryption). The goal is real asymmetric-crypto behaviour and cost for
// the SAP and billing protocols — not resistance to 2020s-era lattice/oracle
// attacks, which a production deployment would get from a vetted library.
#pragma once

#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/bignum.hpp"

namespace cb::crypto {

/// PKCS#1 v1.5 type-1 encoding of sha256(message) at `width` bytes — the
/// exact block sign() exponentiates and verify() compares against. Exposed
/// for the batch verifier (crypto/batch_verify.hpp), which must screen
/// products of these blocks, not a re-derived encoding.
Bytes pkcs1_signature_block(BytesView message, std::size_t width);

/// Public half of an RSA key pair; copyable value type.
class RsaPublicKey {
 public:
  RsaPublicKey() = default;
  RsaPublicKey(BigNum n, BigNum e) : n_(std::move(n)), e_(std::move(e)) {
    if (n_.is_odd()) mont_ = std::make_shared<const Montgomery>(n_);
  }

  const BigNum& modulus() const { return n_; }
  const BigNum& exponent() const { return e_; }
  /// Modulus size in bytes (the width of signatures and ciphertext blocks).
  std::size_t size_bytes() const { return (n_.bit_length() + 7) / 8; }
  bool empty() const { return n_.is_zero(); }

  /// Verify a signature over sha256(message).
  bool verify(BytesView message, BytesView signature) const;
  /// Encrypt a short plaintext (must fit in size_bytes() - 11).
  Result<Bytes> encrypt(BytesView plaintext, Rng& rng) const;

  /// Stable identifier: sha256 over the serialized key (paper: "an
  /// identifier could be the digest of the owner's public key").
  Bytes fingerprint() const;

  Bytes serialize() const;
  static Result<RsaPublicKey> deserialize(BytesView data);

  bool operator==(const RsaPublicKey& o) const { return n_ == o.n_ && e_ == o.e_; }

 private:
  /// (base ^ e) mod n through the cached Montgomery context when available.
  BigNum public_op(const BigNum& base) const {
    return mont_ ? mont_->pow(base, e_) : base.powmod(e_, n_);
  }

  BigNum n_;
  BigNum e_;
  // Per-key precomputed context; shared so copies of the key (they are
  // passed around by value in SAP messages) reuse one immutable setup.
  std::shared_ptr<const Montgomery> mont_;
};

/// Full RSA key pair.
class RsaKeyPair {
 public:
  RsaKeyPair() = default;

  /// Generate a fresh key with the given modulus size (default 1024 bits:
  /// large enough for real multi-precision cost, small enough for fast
  /// simulation; tests use 512 for speed).
  static RsaKeyPair generate(Rng& rng, std::size_t modulus_bits = 1024);

  const RsaPublicKey& public_key() const { return pub_; }
  bool empty() const { return pub_.empty(); }

  /// Sign sha256(message) with the private exponent.
  Bytes sign(BytesView message) const;
  /// Decrypt a ciphertext produced by RsaPublicKey::encrypt.
  Result<Bytes> decrypt(BytesView ciphertext) const;

 private:
  RsaKeyPair(RsaPublicKey pub, BigNum d, BigNum p, BigNum q);
  /// Private-key exponentiation, CRT-accelerated when factors are known.
  BigNum private_op(const BigNum& m) const;

  RsaPublicKey pub_;
  BigNum d_;
  // CRT components (standard ~4x speedup for sign/decrypt).
  BigNum p_, q_, d_p_, d_q_, q_inv_;
  // Montgomery contexts for the two half-size prime moduli.
  std::shared_ptr<const Montgomery> mont_p_, mont_q_;
};

}  // namespace cb::crypto
