#include "crypto/rsa.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace cb::crypto {

// PKCS#1 v1.5 type-1 block: 0x00 0x01 FF..FF 0x00 || digest. Public so the
// batch verifier screens against the exact encoding sign/verify use.
Bytes pkcs1_signature_block(BytesView message, std::size_t width) {
  const Bytes digest = sha256(message);
  if (width < digest.size() + 11) throw std::invalid_argument("rsa: modulus too small to sign");
  Bytes em(width, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[width - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(), em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return em;
}

namespace {
Bytes signature_block(BytesView message, std::size_t width) {
  return pkcs1_signature_block(message, width);
}
}  // namespace

bool RsaPublicKey::verify(BytesView message, BytesView signature) const {
  if (empty() || signature.size() != size_bytes()) return false;
  const BigNum s = BigNum::from_bytes_be(signature);
  if (s >= n_) return false;
  const BigNum m = public_op(s);
  Bytes em;
  try {
    em = m.to_bytes_be(size_bytes());
  } catch (const std::invalid_argument&) {
    return false;
  }
  const Bytes expected = signature_block(message, size_bytes());
  return constant_time_equal(em, expected);
}

Result<Bytes> RsaPublicKey::encrypt(BytesView plaintext, Rng& rng) const {
  if (empty()) return Result<Bytes>::err("rsa encrypt: empty key");
  const std::size_t k = size_bytes();
  if (plaintext.size() + 11 > k) return Result<Bytes>::err("rsa encrypt: plaintext too long");

  // Type-2 block: 0x00 0x02 <nonzero pad> 0x00 <plaintext>.
  Bytes em(k, 0);
  em[1] = 0x02;
  const std::size_t pad_len = k - plaintext.size() - 3;
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b;
    do {
      b = static_cast<std::uint8_t>(rng.next_u64());
    } while (b == 0);
    em[2 + i] = b;
  }
  em[2 + pad_len] = 0x00;
  std::copy(plaintext.begin(), plaintext.end(), em.begin() + static_cast<std::ptrdiff_t>(3 + pad_len));

  const BigNum m = BigNum::from_bytes_be(em);
  return public_op(m).to_bytes_be(k);
}

Bytes RsaPublicKey::fingerprint() const { return sha256(serialize()); }

Bytes RsaPublicKey::serialize() const {
  ByteWriter w;
  w.bytes(n_.to_bytes_be());
  w.bytes(e_.to_bytes_be());
  return w.take();
}

Result<RsaPublicKey> RsaPublicKey::deserialize(BytesView data) {
  try {
    ByteReader r(data);
    BigNum n = BigNum::from_bytes_be(r.bytes());
    BigNum e = BigNum::from_bytes_be(r.bytes());
    if (n.is_zero() || e.is_zero()) return Result<RsaPublicKey>::err("rsa key: zero component");
    return RsaPublicKey(std::move(n), std::move(e));
  } catch (const std::out_of_range&) {
    return Result<RsaPublicKey>::err("rsa key: truncated");
  }
}

RsaKeyPair::RsaKeyPair(RsaPublicKey pub, BigNum d, BigNum p, BigNum q)
    : pub_(std::move(pub)), d_(std::move(d)), p_(std::move(p)), q_(std::move(q)) {
  d_p_ = d_.mod(p_ - BigNum{1});
  d_q_ = d_.mod(q_ - BigNum{1});
  q_inv_ = BigNum::modinv(q_, p_);
  mont_p_ = std::make_shared<const Montgomery>(p_);
  mont_q_ = std::make_shared<const Montgomery>(q_);
}

RsaKeyPair RsaKeyPair::generate(Rng& rng, std::size_t modulus_bits) {
  if (modulus_bits < 128) throw std::invalid_argument("rsa: modulus too small");
  const BigNum e{65537};
  for (;;) {
    const BigNum p = BigNum::generate_prime(rng, modulus_bits / 2);
    const BigNum q = BigNum::generate_prime(rng, modulus_bits - modulus_bits / 2);
    if (p == q) continue;
    const BigNum n = p * q;
    const BigNum phi = (p - BigNum{1}) * (q - BigNum{1});
    if (!(BigNum::gcd(e, phi) == BigNum{1})) continue;
    BigNum d = BigNum::modinv(e, phi);
    if (d.is_zero()) continue;
    return RsaKeyPair(RsaPublicKey(n, e), std::move(d), p, q);
  }
}

BigNum RsaKeyPair::private_op(const BigNum& m) const {
  // Garner's CRT recombination: m^d mod n from half-size exponentiations,
  // each through its prime's cached Montgomery context.
  const BigNum m1 = mont_p_ ? mont_p_->pow(m, d_p_) : m.mod(p_).powmod(d_p_, p_);
  const BigNum m2 = mont_q_ ? mont_q_->pow(m, d_q_) : m.mod(q_).powmod(d_q_, q_);
  // h = q_inv * (m1 - m2) mod p  (lift m1 into the positive range first)
  const BigNum diff = (m1 + p_ - m2.mod(p_)).mod(p_);
  const BigNum h = (q_inv_ * diff).mod(p_);
  return m2 + q_ * h;
}

Bytes RsaKeyPair::sign(BytesView message) const {
  if (empty()) throw std::logic_error("rsa sign: empty key");
  const std::size_t k = pub_.size_bytes();
  const Bytes em = signature_block(message, k);
  const BigNum m = BigNum::from_bytes_be(em);
  return private_op(m).to_bytes_be(k);
}

Result<Bytes> RsaKeyPair::decrypt(BytesView ciphertext) const {
  if (empty()) return Result<Bytes>::err("rsa decrypt: empty key");
  const std::size_t k = pub_.size_bytes();
  if (ciphertext.size() != k) return Result<Bytes>::err("rsa decrypt: bad ciphertext length");
  const BigNum c = BigNum::from_bytes_be(ciphertext);
  if (c >= pub_.modulus()) return Result<Bytes>::err("rsa decrypt: ciphertext out of range");
  Bytes em;
  try {
    em = private_op(c).to_bytes_be(k);
  } catch (const std::invalid_argument&) {
    return Result<Bytes>::err("rsa decrypt: internal width error");
  }
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) {
    return Result<Bytes>::err("rsa decrypt: bad padding");
  }
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) return Result<Bytes>::err("rsa decrypt: bad padding");
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

}  // namespace cb::crypto
