#include "ran/ue_radio.hpp"

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace cb::ran {

UeRadio::UeRadio(sim::Simulator& sim, const RadioEnvironment& env, Trajectory trajectory,
                 UeRadioConfig config)
    : sim_(sim), env_(env), trajectory_(std::move(trajectory)), config_(config) {}

void UeRadio::start(std::function<void(CellId, CellId)> on_cell_change) {
  on_cell_change_ = std::move(on_cell_change);
  started_at_ = sim_.now();
  running_ = true;
  measure();
}

void UeRadio::stop() {
  running_ = false;
  timer_.cancel();
}

Point UeRadio::position() const { return trajectory_.position(sim_.now() - started_at_); }

double UeRadio::serving_rate_bps() const {
  if (serving_ == 0) return 0.0;
  return RadioEnvironment::achievable_rate_bps(env_.cell(serving_), position());
}

std::vector<CellId> UeRadio::candidates() const {
  std::vector<CellId> out;
  for (const Measurement& m : env_.scan(position(), config_.floor_dbm)) {
    out.push_back(m.cell);
  }
  return out;
}

void UeRadio::measure() {
  if (!running_) return;
  const Point where = position();
  const Measurement best = env_.best(where, config_.floor_dbm);

  CellId next = serving_;
  if (serving_ == 0) {
    next = best.cell;  // initial acquisition: take the strongest
  } else {
    const double serving_rsrp = RadioEnvironment::rsrp_dbm(env_.cell(serving_), where);
    if (serving_rsrp < config_.floor_dbm) {
      next = best.cell;  // lost the serving cell entirely
    } else if (best.cell != 0 && best.cell != serving_ &&
               best.rsrp_dbm > serving_rsrp + config_.hysteresis_db) {
      next = best.cell;  // A3 event: neighbour better by hysteresis
    }
  }

  if (next != serving_) {
    const CellId old = serving_;
    serving_ = next;
    ++changes_;
    obs::inc(obs::counter("ran.cell_changes"));
    obs::trace(sim_.now(), obs::TraceType::CellChange, old, next);
    CB_LOG(Debug, "ran") << "cell change " << old << " -> " << next;
    if (on_cell_change_) on_cell_change_(old, next);
  }

  timer_ = sim_.schedule(config_.measurement_interval, [this] { measure(); });
}

}  // namespace cb::ran
