#include "ran/ue_radio.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "ran/drive_trace.hpp"

namespace cb::ran {

namespace {

const char* reason_counter(ReselectReason reason) {
  switch (reason) {
    case ReselectReason::Acquire: return "ran.reselect.acquire";
    case ReselectReason::FloorLoss: return "ran.reselect.floor_loss";
    case ReselectReason::A3: return "ran.reselect.a3";
    case ReselectReason::Ttt: return "ran.reselect.ttt";
    case ReselectReason::Rank: return "ran.reselect.rank";
  }
  return "ran.reselect.unknown";
}

}  // namespace

const char* to_string(ReselectionPolicyKind kind) {
  switch (kind) {
    case ReselectionPolicyKind::A3Hysteresis: return "a3";
    case ReselectionPolicyKind::A3TimeToTrigger: return "a3_ttt";
    case ReselectionPolicyKind::RankBased: return "rank";
  }
  return "unknown";
}

UeRadio::UeRadio(sim::Simulator& sim, const RadioEnvironment& env, Trajectory trajectory,
                 UeRadioConfig config)
    : sim_(sim), env_(env), trajectory_(std::move(trajectory)), config_(config),
      channel_(config.channel) {}

void UeRadio::start(std::function<void(CellId, CellId)> on_cell_change) {
  on_cell_change_ = std::move(on_cell_change);
  started_at_ = sim_.now();
  running_ = true;
  if (drive_sink_ != nullptr) {
    drive_sink_->cells = env_.cells();
    drive_sink_->config = config_;
  }
  measure();
}

void UeRadio::stop() {
  running_ = false;
  timer_.cancel();
}

void UeRadio::set_drive_sink(DriveTestTrace* sink) { drive_sink_ = sink; }

Point UeRadio::position() const { return trajectory_.position(sim_.now() - started_at_); }

double UeRadio::serving_rate_bps() const {
  if (serving_ == 0) return 0.0;
  return RadioEnvironment::achievable_rate_bps(env_.cell(serving_), position());
}

double UeRadio::l3_alpha() const {
  // 3GPP TS 36.331 §5.5.3.2: a = 1/2^(k/4); k = 0 -> a = 1 (no smoothing).
  if (config_.l3_filter_k <= 0) return 1.0;
  return std::pow(2.0, -config_.l3_filter_k / 4.0);
}

bool UeRadio::table_contains(CellId cell) const {
  for (const NeighborEntry& e : table_) {
    if (e.cell == cell) return true;
  }
  return false;
}

std::vector<CellId> UeRadio::candidates() const {
  // Same ordering algorithm as RadioEnvironment::scan, but over the L3 table
  // (last tick's state) rather than a fresh geometry scan.
  std::vector<Measurement> visible;
  for (const NeighborEntry& e : table_) {
    if (e.filtered_dbm >= config_.floor_dbm) {
      visible.push_back(Measurement{e.cell, e.filtered_dbm});
    }
  }
  std::sort(visible.begin(), visible.end(),
            [](const Measurement& a, const Measurement& b) { return a.rsrp_dbm > b.rsrp_dbm; });
  std::vector<CellId> out;
  out.reserve(visible.size());
  for (const Measurement& m : visible) out.push_back(m.cell);
  return out;
}

void UeRadio::measure() {
  if (!running_) return;
  const TimePoint now = sim_.now();
  const Point where = position();
  const double alpha = l3_alpha();
  obs::inc(obs::counter("ran.measurement_ticks"));

  // Refresh the neighbor table: one channel-noisy sample per detectable cell,
  // folded through the L3 filter. Entries stay in registry order so the
  // strongest-cell tie-break matches RadioEnvironment::best exactly. The
  // serving cell is always tracked — the floor-loss rule below needs its
  // quality even when it drops out of the visible set.
  std::size_t kept = 0;
  for (const Cell& c : env_.cells()) {
    const double rsrp = channel_.rsrp_dbm(c, config_.ue_id, where, now);
    if (rsrp < config_.floor_dbm && c.id != serving_) continue;
    NeighborEntry* entry = nullptr;
    for (std::size_t i = kept; i < table_.size(); ++i) {
      if (table_[i].cell == c.id) {
        if (i != kept) std::swap(table_[i], table_[kept]);
        entry = &table_[kept];
        break;
      }
    }
    if (entry == nullptr) {
      table_.insert(table_.begin() + static_cast<std::ptrdiff_t>(kept),
                    NeighborEntry{c.id, rsrp, rsrp, now});
      entry = &table_[kept];
    } else {
      entry->rsrp_dbm = rsrp;
      entry->filtered_dbm =
          alpha >= 1.0 ? rsrp : (1.0 - alpha) * entry->filtered_dbm + alpha * rsrp;
      entry->last_seen = now;
    }
    ++kept;
  }
  table_.resize(kept);  // cells that fell below the floor age out
  obs::set(obs::gauge("ran.neighbor_count"), static_cast<double>(table_.size()));

  // Strongest filtered cell above the floor (registry-order tie-break).
  NeighborEntry best;
  for (const NeighborEntry& e : table_) {
    if (e.filtered_dbm >= config_.floor_dbm && e.filtered_dbm > best.filtered_dbm) best = e;
  }
  const NeighborEntry* sv = nullptr;
  for (const NeighborEntry& e : table_) {
    if (e.cell == serving_) {
      sv = &e;
      break;
    }
  }

  CellId next = serving_;
  ReselectReason reason = ReselectReason::Acquire;
  double margin = 0.0;
  Duration held = Duration::zero();
  if (serving_ == 0) {
    next = best.cell;  // initial acquisition: take the strongest
  } else if (sv == nullptr || sv->filtered_dbm < config_.floor_dbm) {
    next = best.cell;  // lost the serving cell entirely
    reason = ReselectReason::FloorLoss;
  } else {
    switch (config_.policy) {
      case ReselectionPolicyKind::A3Hysteresis:
        if (best.cell != 0 && best.cell != serving_ &&
            best.filtered_dbm > sv->filtered_dbm + config_.hysteresis_db) {
          next = best.cell;  // A3 event: neighbour better by hysteresis
          reason = ReselectReason::A3;
          margin = best.filtered_dbm - sv->filtered_dbm;
        }
        break;
      case ReselectionPolicyKind::A3TimeToTrigger:
        if (best.cell != 0 && best.cell != serving_ &&
            best.filtered_dbm > sv->filtered_dbm + config_.hysteresis_db) {
          if (best.cell != ttt_candidate_) {
            ttt_candidate_ = best.cell;
            ttt_since_ = now;
          }
          held = now - ttt_since_;
          if (held >= config_.time_to_trigger) {
            next = best.cell;
            reason = ReselectReason::Ttt;
            margin = best.filtered_dbm - sv->filtered_dbm;
          }
        } else {
          ttt_candidate_ = 0;  // condition broke: restart the trigger clock
        }
        break;
      case ReselectionPolicyKind::RankBased:
        if (best.cell != 0 && best.cell != serving_ &&
            best.filtered_dbm > sv->filtered_dbm) {
          next = best.cell;  // strongest-cell baseline: no margin required
          reason = ReselectReason::Rank;
          margin = best.filtered_dbm - sv->filtered_dbm;
        }
        break;
    }
  }

  if (next != serving_) {
    const CellId old = serving_;
    serving_ = next;
    ++changes_;
    ttt_candidate_ = 0;
    reselections_.push_back(ReselectionEvent{now, old, next, reason, margin, held});
    obs::inc(obs::counter("ran.cell_changes"));
    obs::inc(obs::counter(reason_counter(reason)));
    obs::observe(obs::histogram("ran.reselect.margin_db"), margin);
    obs::trace(sim_.now(), obs::TraceType::CellChange, old, next);
    obs::trace(sim_.now(), obs::TraceType::Reselection, next,
               static_cast<std::uint64_t>(reason));
    CB_LOG(Debug, "ran") << "cell change " << old << " -> " << next << " ("
                         << reason_counter(reason) << ", margin " << margin << " dB)";
    if (on_cell_change_) on_cell_change_(old, next);
    if (drive_sink_ != nullptr) {
      drive_sink_->reselections.push_back(
          DriveTestTrace::Reselection{now - started_at_, old, next});
    }
  }

  if (drive_sink_ != nullptr) {
    DriveTestTrace::Sample sample;
    sample.at = now - started_at_;
    sample.position = where;
    sample.serving = serving_;
    sample.neighbors.reserve(table_.size());
    for (const NeighborEntry& e : table_) {
      sample.neighbors.push_back(DriveTestTrace::Neighbor{e.cell, e.rsrp_dbm, e.filtered_dbm});
    }
    drive_sink_->samples.push_back(std::move(sample));
  }

  timer_ = sim_.schedule(config_.measurement_interval, [this] { measure(); });
}

}  // namespace cb::ran
