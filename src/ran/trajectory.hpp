// Mobility trajectories: piecewise-linear waypoint paths traversed at a
// constant speed. The drive-test routes (suburb / downtown / highway) are
// instances with different speeds and tower spacings.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "ran/geometry.hpp"

namespace cb::ran {

class Trajectory {
 public:
  /// `waypoints` must contain at least one point; `speed` in m/s.
  Trajectory(std::vector<Point> waypoints, double speed_mps);

  /// Position after travelling for `t` (clamped to the final waypoint).
  Point position(Duration t) const;

  /// Total path length in metres.
  double length() const { return total_length_; }
  /// Time to traverse the whole path.
  Duration duration() const;
  double speed() const { return speed_; }

  /// A straight line of `length_m` metres along the x-axis.
  static Trajectory line(double length_m, double speed_mps);

 private:
  std::vector<Point> waypoints_;
  std::vector<double> cumulative_;  // distance up to waypoint i
  double speed_;
  double total_length_ = 0.0;
};

}  // namespace cb::ran
