// Mobility trajectories: piecewise-linear waypoint paths traversed at a
// constant speed. The drive-test routes (suburb / downtown / highway) are
// instances with different speeds and tower spacings.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "ran/geometry.hpp"

namespace cb::ran {

/// One waypoint with an explicit arrival time (drive-test trace replay).
struct TimedPoint {
  Duration at = Duration::zero();
  Point point;
};

class Trajectory {
 public:
  /// `waypoints` must contain at least one point; `speed` in m/s.
  Trajectory(std::vector<Point> waypoints, double speed_mps);

  /// Timed path: position interpolates linearly between consecutive samples;
  /// timestamps must be strictly increasing. A query landing exactly on a
  /// sample instant returns that sample's point bit-exactly, so a replayed
  /// drive-test trace reproduces the recording's positions at every
  /// measurement tick. Speed may vary per segment (speed() reports the
  /// path average).
  explicit Trajectory(std::vector<TimedPoint> samples);

  /// Position after travelling for `t` (clamped to the final waypoint).
  Point position(Duration t) const;

  /// Total path length in metres.
  double length() const { return total_length_; }
  /// Time to traverse the whole path.
  Duration duration() const;
  double speed() const { return speed_; }

  /// A straight line of `length_m` metres along the x-axis.
  static Trajectory line(double length_m, double speed_mps);

 private:
  std::vector<Point> waypoints_;
  std::vector<double> cumulative_;  // distance up to waypoint i
  std::vector<Duration> times_;     // non-empty only for timed trajectories
  double speed_;
  double total_length_ = 0.0;
};

}  // namespace cb::ran
