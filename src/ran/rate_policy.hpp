// Operator traffic-management policy applied to a subscriber's bearer.
//
// Appendix A of the paper measured T-Mobile enforcing starkly different rate
// limits by time of day: ~1.03 Mb/s mean (σ 0.32, peak 1.75) during the day
// vs ~14.95 Mb/s mean (σ 8.94, peak 52.5) after ~12:30 am. BearerShaper
// reproduces that by resampling the radio-link rate every second from the
// active policy's distribution.
#pragma once

#include <algorithm>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace cb::ran {

/// Time-of-day rate-limit policy (Appendix A calibration).
struct RatePolicy {
  double mean_bps;
  double stddev_bps;
  double min_bps;
  double max_bps;

  /// Daytime T-Mobile policy: ~1 Mb/s, tight variance.
  static RatePolicy day() { return {1.03e6, 0.30e6, 0.5e6, 1.75e6}; }
  /// Night policy: high mean, high variance.
  static RatePolicy night() { return {14.95e6, 8.94e6, 2.0e6, 52.5e6}; }
  /// No operator cap (bounded only by the PHY).
  static RatePolicy unlimited() { return {0.0, 0.0, 0.0, 0.0}; }

  bool is_unlimited() const { return max_bps == 0.0; }

  double sample(Rng& rng) const {
    if (is_unlimited()) return 0.0;
    return std::clamp(rng.normal(mean_bps, stddev_bps), min_bps, max_bps);
  }
};

/// Periodically re-applies the policy (and the PHY ceiling) to one radio
/// link direction; models the per-UE shaper in the operator's scheduler.
class BearerShaper {
 public:
  /// `phy_rate_fn` returns the instantaneous achievable PHY rate (bps) —
  /// zero to leave the PHY unconstrained. The enforced link rate is
  /// min(policy sample, phy rate), resampled every `interval`.
  BearerShaper(sim::Simulator& sim, net::Link& link, net::Node* downlink_from,
               RatePolicy policy, std::function<double()> phy_rate_fn,
               Duration interval = Duration::s(1));
  ~BearerShaper();

  void set_policy(RatePolicy policy) { policy_ = policy; }
  const RatePolicy& policy() const { return policy_; }
  double current_rate_bps() const { return current_rate_; }

  /// Additional hard ceiling (e.g. a broker-assigned QoS rate in
  /// CellBricks); 0 removes the cap.
  void set_cap_bps(double cap) { cap_bps_ = cap; }
  double cap_bps() const { return cap_bps_; }

 private:
  void tick();

  sim::Simulator& sim_;
  net::Link& link_;
  net::Node* from_;
  RatePolicy policy_;
  std::function<double()> phy_rate_fn_;
  Duration interval_;
  double current_rate_ = 0.0;
  double cap_bps_ = 0.0;
  double policy_cap_ = 0.0;  // AR(1) state of the operator-policy rate
  Rng rng_;
  sim::EventHandle timer_;
};

}  // namespace cb::ran
