#include "ran/rate_policy.hpp"
#include <cmath>

#include "obs/metrics.hpp"

namespace cb::ran {

BearerShaper::BearerShaper(sim::Simulator& sim, net::Link& link, net::Node* downlink_from,
                           RatePolicy policy, std::function<double()> phy_rate_fn,
                           Duration interval)
    : sim_(sim),
      link_(link),
      from_(downlink_from),
      policy_(policy),
      phy_rate_fn_(std::move(phy_rate_fn)),
      interval_(interval),
      rng_(sim.rng().fork(0x5A7E)) {
  tick();
}

BearerShaper::~BearerShaper() { timer_.cancel(); }

void BearerShaper::tick() {
  const double phy = phy_rate_fn_ ? phy_rate_fn_() : 0.0;
  // AR(1) evolution of the policy rate: stationary mean/stddev match the
  // policy, but consecutive seconds are correlated (rate cliffs in the
  // operator scheduler are rare; fading and load shift gradually).
  double cap = 0.0;
  if (!policy_.is_unlimited()) {
    constexpr double kRho = 0.7;
    if (policy_cap_ <= 0.0) {
      policy_cap_ = policy_.sample(rng_);
    } else {
      const double innovation =
          rng_.normal(0.0, policy_.stddev_bps * std::sqrt(1.0 - kRho * kRho));
      policy_cap_ = policy_.mean_bps + kRho * (policy_cap_ - policy_.mean_bps) + innovation;
      policy_cap_ = std::clamp(policy_cap_, policy_.min_bps, policy_.max_bps);
    }
    cap = policy_cap_;
  }
  double rate = 0.0;
  if (phy > 0.0 && cap > 0.0) {
    rate = std::min(phy, cap);
  } else {
    rate = std::max(phy, cap);  // whichever constraint exists
  }
  if (cap_bps_ > 0.0 && (rate == 0.0 || cap_bps_ < rate)) rate = cap_bps_;
  current_rate_ = rate;
  obs::set(obs::gauge("ran.shaper.rate_bps"), rate);

  net::LinkParams params = link_.params(from_);
  params.rate_bps = rate;
  link_.set_params(from_, params);
  // The uplink direction is shaped identically (symmetric policy).
  net::Node* peer = link_.peer(from_);
  net::LinkParams up = link_.params(peer);
  up.rate_bps = rate;
  link_.set_params(peer, up);

  timer_ = sim_.schedule(interval_, [this] { tick(); });
}

}  // namespace cb::ran
