// Deterministic measurement channel: spatially-correlated log-normal
// shadowing plus optional fast-fading jitter layered on top of the pure
// path-loss model in RadioEnvironment.
//
// Every noise term is a PURE FUNCTION of (seed, ue, cell, position, time):
// values come from counter-style hashing, never from a stateful RNG stream.
// That makes measurements order-independent — a scan at time t returns the
// same RSRP no matter what was measured before it — so same-seed replays
// stay bit-identical even when the measurement schedule interleaves with
// chaos faults, and a recorded drive-test trace replays exactly.
//
// Spatial correlation uses a lattice of per-corner Gaussians hashed from
// (seed, ue, cell, i, j) with bilinear interpolation; the lattice spacing is
// the decorrelation distance, so two positions a few metres apart share
// corners (correlated) while positions a lattice cell apart are independent
// — the standard exponential-decorrelation idiom (3GPP TR 38.901 §7.4.4)
// reduced to something hashable.
//
// The all-defaults channel (sigma 0, fading off) short-circuits to the pure
// path-loss value, preserving the pre-channel engine bit-for-bit.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "ran/radio.hpp"

namespace cb::ran {

struct ChannelConfig {
  /// Log-normal shadowing standard deviation in dB. 0 = off (bit-compatible
  /// with the pure path-loss engine).
  double shadow_sigma_db = 0.0;
  /// Shadowing decorrelation distance in metres (lattice spacing).
  double decorrelation_m = 50.0;
  /// Per-measurement fast-fading jitter on top of shadowing.
  bool fast_fading = false;
  double fading_sigma_db = 2.0;
  /// World seed; forked internally per noise term so the channel never
  /// correlates with any simulator Rng stream.
  std::uint64_t seed = 0;
};

class Channel {
 public:
  Channel() = default;
  explicit Channel(ChannelConfig config) : config_(config) {}

  const ChannelConfig& config() const { return config_; }
  bool noiseless() const {
    return config_.shadow_sigma_db <= 0.0 && !config_.fast_fading;
  }

  /// Shadowing offset in dB for `ue` towards `cell` at `where` (0 when off).
  double shadowing_db(std::uint32_t ue, CellId cell, const Point& where) const;

  /// Fast-fading offset in dB at measurement instant `at` (0 when off).
  double fading_db(std::uint32_t ue, CellId cell, TimePoint at) const;

  /// Measured RSRP: path loss + shadowing + fading. Bit-identical to
  /// RadioEnvironment::rsrp_dbm when the channel is noiseless.
  double rsrp_dbm(const Cell& cell, std::uint32_t ue, const Point& where,
                  TimePoint at) const;

 private:
  ChannelConfig config_{};
};

}  // namespace cb::ran
