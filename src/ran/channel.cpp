#include "ran/channel.hpp"

#include <cmath>

namespace cb::ran {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) { return splitmix64(h ^ v); }

/// Uniform in (0, 1), never exactly 0 or 1 (log() below must stay finite).
double unit_open(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
}

/// Standard normal from one hash value (Box-Muller on two derived uniforms).
double gaussian(std::uint64_t h) {
  const double u1 = unit_open(h);
  const double u2 = unit_open(splitmix64(h));
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

/// Per-corner lattice Gaussian for the shadowing field.
double corner(std::uint64_t base, std::int64_t i, std::int64_t j) {
  std::uint64_t h = mix(base, static_cast<std::uint64_t>(i));
  h = mix(h, static_cast<std::uint64_t>(j));
  return gaussian(h);
}

}  // namespace

double Channel::shadowing_db(std::uint32_t ue, CellId cell, const Point& where) const {
  if (config_.shadow_sigma_db <= 0.0) return 0.0;
  const double d = config_.decorrelation_m > 1e-6 ? config_.decorrelation_m : 50.0;
  std::uint64_t base = mix(config_.seed, 0x5AD0u);  // shadowing stream tag
  base = mix(base, ue);
  base = mix(base, cell);
  const double gx = where.x / d;
  const double gy = where.y / d;
  const auto i = static_cast<std::int64_t>(std::floor(gx));
  const auto j = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(i);
  const double fy = gy - static_cast<double>(j);
  const double c00 = corner(base, i, j);
  const double c10 = corner(base, i + 1, j);
  const double c01 = corner(base, i, j + 1);
  const double c11 = corner(base, i + 1, j + 1);
  const double v = c00 * (1.0 - fx) * (1.0 - fy) + c10 * fx * (1.0 - fy) +
                   c01 * (1.0 - fx) * fy + c11 * fx * fy;
  return config_.shadow_sigma_db * v;
}

double Channel::fading_db(std::uint32_t ue, CellId cell, TimePoint at) const {
  if (!config_.fast_fading) return 0.0;
  std::uint64_t h = mix(config_.seed, 0xFADEu);  // fading stream tag
  h = mix(h, ue);
  h = mix(h, cell);
  h = mix(h, static_cast<std::uint64_t>(at.nanos()));
  return config_.fading_sigma_db * gaussian(h);
}

double Channel::rsrp_dbm(const Cell& cell, std::uint32_t ue, const Point& where,
                         TimePoint at) const {
  const double pure = RadioEnvironment::rsrp_dbm(cell, where);
  if (noiseless()) return pure;  // bit-compatible with the pre-channel engine
  return pure + shadowing_db(ue, cell.id, where) + fading_db(ue, cell.id, at);
}

}  // namespace cb::ran
