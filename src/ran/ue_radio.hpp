// UE radio: periodic measurement, cell (re)selection with hysteresis, and
// cell-change events consumed by the mobility layer above — the EPC's
// network handover in the MNO baseline, or the CellBricks host-driven
// detach/re-attach (§4.2: "a user simply detaches from one cell tower and
// independently attaches to a new tower").
//
// The measurement pipeline is 3GPP-shaped: each tick scans the geometry
// through the (optionally fading) Channel, folds the noisy samples into a
// per-cell NeighborTable with the L3 k-filter (F_n = (1-a)F_{n-1} + a M_n,
// a = 1/2^(k/4)), and hands the filtered table to a pluggable reselection
// policy. With all defaults — zero-noise channel, k = 0, A3 hysteresis —
// the loop is bit-identical to the pre-measurement engine, which the golden
// chaos fingerprint in tests/test_faults.cpp pins.
#pragma once

#include <functional>
#include <vector>

#include "ran/channel.hpp"
#include "ran/radio.hpp"
#include "ran/trajectory.hpp"
#include "sim/simulator.hpp"

namespace cb::ran {

struct DriveTestTrace;

/// Reselection policies the measurement loop can run (A/B surface; cbfuzz
/// samples all three).
enum class ReselectionPolicyKind : int {
  /// A3 event: strongest neighbor beats serving by `hysteresis_db`. The
  /// pre-measurement engine's behaviour; the default.
  A3Hysteresis = 0,
  /// A3 plus time-to-trigger: the margin must hold continuously for
  /// `time_to_trigger` before the change fires (3GPP's ping-pong damper).
  A3TimeToTrigger = 1,
  /// Rank-based baseline: always camp on the strongest filtered cell, no
  /// margin — the ping-pong-prone strawman the A/B measures against.
  RankBased = 2,
};

const char* to_string(ReselectionPolicyKind kind);

struct UeRadioConfig {
  /// Measurement / reselection period.
  Duration measurement_interval = Duration::ms(200);
  /// A neighbour must beat the serving cell by this margin to trigger a
  /// change (A3-style hysteresis).
  double hysteresis_db = 3.0;
  /// Detection floor.
  double floor_dbm = -120.0;
  /// Reselection policy (see ReselectionPolicyKind).
  ReselectionPolicyKind policy = ReselectionPolicyKind::A3Hysteresis;
  /// A3TimeToTrigger only: how long the A3 condition must hold.
  Duration time_to_trigger = Duration::ms(0);
  /// 3GPP L3 filter coefficient k (a = 1/2^(k/4)); 0 disables smoothing
  /// (filtered == instantaneous, bit-compatible with the pre-filter engine).
  int l3_filter_k = 0;
  /// Measurement channel (shadowing / fast fading); zero-noise by default.
  ChannelConfig channel{};
  /// Identity for the per-UE channel hash streams.
  std::uint32_t ue_id = 1;
};

/// One row of the per-UE neighbor table: last instantaneous sample and the
/// L3-filtered quality for a visible (or serving) cell.
struct NeighborEntry {
  CellId cell = 0;
  double rsrp_dbm = -140.0;
  double filtered_dbm = -140.0;
  TimePoint last_seen;
};

/// Why a reselection fired (audit log for the ran.* invariants).
enum class ReselectReason : int {
  Acquire = 0,    // initial acquisition (from == 0)
  FloorLoss = 1,  // serving fell below the detection floor
  A3 = 2,         // margin-over-hysteresis
  Ttt = 3,        // margin held for time-to-trigger
  Rank = 4,       // rank-based strongest-cell change
};

/// One serving-cell change as the policy decided it.
struct ReselectionEvent {
  TimePoint at;
  CellId from = 0;
  CellId to = 0;
  ReselectReason reason = ReselectReason::Acquire;
  /// Filtered margin of the target over the serving cell at the decision.
  double margin_db = 0.0;
  /// How long the A3 condition had held (Ttt reason only).
  Duration held = Duration::zero();
};

/// Tracks the serving cell while the UE moves; emits cell-change events.
class UeRadio {
 public:
  UeRadio(sim::Simulator& sim, const RadioEnvironment& env, Trajectory trajectory,
          UeRadioConfig config = {});

  /// Begin periodic measurement. `on_cell_change(old_cell, new_cell)` fires
  /// on every serving-cell change; old_cell 0 = initial acquisition,
  /// new_cell 0 = coverage lost.
  void start(std::function<void(CellId, CellId)> on_cell_change);
  void stop();

  CellId serving_cell() const { return serving_; }
  Point position() const;
  /// Achievable PHY rate on the current serving cell at the current spot.
  double serving_rate_bps() const;

  /// Cells in the neighbor table above the floor, strongest (filtered)
  /// first — the fallback order the attach-recovery logic walks when the
  /// preferred cell fails. State from the last measurement tick, not a
  /// fresh geometry scan (asynchronous measurement model).
  std::vector<CellId> candidates() const;

  /// Neighbor-table state from the last measurement tick (registry order).
  const std::vector<NeighborEntry>& neighbor_table() const { return table_; }
  bool table_contains(CellId cell) const;

  /// Number of serving-cell changes seen so far (MTTHO statistics).
  std::uint64_t cell_changes() const { return changes_; }

  /// Audit log of every serving-cell change with the policy's evidence
  /// (margin, hold time, reason) — the ran.* invariants read this.
  const std::vector<ReselectionEvent>& reselections() const { return reselections_; }

  const UeRadioConfig& config() const { return config_; }

  /// Record every measurement tick + reselection into `sink` (drive-test
  /// trace capture). Pass nullptr to stop. The sink's cells/config snapshot
  /// is filled on start(); samples append per tick.
  void set_drive_sink(DriveTestTrace* sink);

 private:
  void measure();
  double l3_alpha() const;

  sim::Simulator& sim_;
  const RadioEnvironment& env_;
  Trajectory trajectory_;
  UeRadioConfig config_;
  Channel channel_;
  TimePoint started_at_;
  bool running_ = false;
  CellId serving_ = 0;
  std::uint64_t changes_ = 0;
  std::vector<NeighborEntry> table_;  // registry order (tie-break stability)
  std::vector<ReselectionEvent> reselections_;
  // A3TimeToTrigger state: candidate currently satisfying the A3 condition
  // and the instant it first did.
  CellId ttt_candidate_ = 0;
  TimePoint ttt_since_;
  DriveTestTrace* drive_sink_ = nullptr;
  std::function<void(CellId, CellId)> on_cell_change_;
  sim::EventHandle timer_;
};

}  // namespace cb::ran
