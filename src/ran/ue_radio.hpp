// UE radio: periodic measurement, cell (re)selection with hysteresis, and
// cell-change events consumed by the mobility layer above — the EPC's
// network handover in the MNO baseline, or the CellBricks host-driven
// detach/re-attach (§4.2: "a user simply detaches from one cell tower and
// independently attaches to a new tower").
#pragma once

#include <functional>
#include <vector>

#include "ran/radio.hpp"
#include "ran/trajectory.hpp"
#include "sim/simulator.hpp"

namespace cb::ran {

struct UeRadioConfig {
  /// Measurement / reselection period.
  Duration measurement_interval = Duration::ms(200);
  /// A neighbour must beat the serving cell by this margin to trigger a
  /// change (A3-style hysteresis).
  double hysteresis_db = 3.0;
  /// Detection floor.
  double floor_dbm = -120.0;
};

/// Tracks the serving cell while the UE moves; emits cell-change events.
class UeRadio {
 public:
  UeRadio(sim::Simulator& sim, const RadioEnvironment& env, Trajectory trajectory,
          UeRadioConfig config = {});

  /// Begin periodic measurement. `on_cell_change(old_cell, new_cell)` fires
  /// on every serving-cell change; old_cell 0 = initial acquisition,
  /// new_cell 0 = coverage lost.
  void start(std::function<void(CellId, CellId)> on_cell_change);
  void stop();

  CellId serving_cell() const { return serving_; }
  Point position() const;
  /// Achievable PHY rate on the current serving cell at the current spot.
  double serving_rate_bps() const;

  /// All currently detectable cells, strongest first — the fallback order
  /// the attach-recovery logic walks when the preferred cell fails.
  std::vector<CellId> candidates() const;

  /// Number of serving-cell changes seen so far (MTTHO statistics).
  std::uint64_t cell_changes() const { return changes_; }

 private:
  void measure();

  sim::Simulator& sim_;
  const RadioEnvironment& env_;
  Trajectory trajectory_;
  UeRadioConfig config_;
  TimePoint started_at_;
  bool running_ = false;
  CellId serving_ = 0;
  std::uint64_t changes_ = 0;
  std::function<void(CellId, CellId)> on_cell_change_;
  sim::EventHandle timer_;
};

}  // namespace cb::ran
