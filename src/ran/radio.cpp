#include "ran/radio.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cb::ran {

double RadioEnvironment::path_loss_db(double distance_m) {
  const double d_km = std::max(distance_m, 10.0) / 1000.0;  // 10 m close-in floor
  return 128.1 + 37.6 * std::log10(d_km);
}

double RadioEnvironment::rsrp_dbm(const Cell& cell, const Point& where) {
  return cell.tx_power_dbm - path_loss_db(distance(cell.position, where));
}

double RadioEnvironment::achievable_rate_bps(const Cell& cell, const Point& where,
                                             double noise_dbm) {
  const double snr_db = rsrp_dbm(cell, where) - noise_dbm;
  const double snr = std::pow(10.0, snr_db / 10.0);
  // Shannon with a 0.75 implementation-efficiency factor, capped at 4.8 b/s/Hz
  // (64-QAM-era LTE peak spectral efficiency).
  const double se = std::min(0.75 * std::log2(1.0 + snr), 4.8);
  return std::max(se, 0.0) * cell.bandwidth_hz;
}

void RadioEnvironment::add_cell(Cell cell) {
  if (cell.id == 0) throw std::invalid_argument("RadioEnvironment: cell id 0 is reserved");
  cells_.push_back(std::move(cell));
}

const Cell& RadioEnvironment::cell(CellId id) const {
  for (const auto& c : cells_) {
    if (c.id == id) return c;
  }
  throw std::out_of_range("RadioEnvironment: unknown cell");
}

std::vector<Measurement> RadioEnvironment::scan(const Point& where, double floor_dbm) const {
  std::vector<Measurement> out;
  for (const auto& c : cells_) {
    const double rsrp = rsrp_dbm(c, where);
    if (rsrp >= floor_dbm) out.push_back(Measurement{c.id, rsrp});
  }
  std::sort(out.begin(), out.end(),
            [](const Measurement& a, const Measurement& b) { return a.rsrp_dbm > b.rsrp_dbm; });
  return out;
}

Measurement RadioEnvironment::best(const Point& where, double floor_dbm) const {
  Measurement best;
  for (const auto& c : cells_) {
    const double rsrp = rsrp_dbm(c, where);
    if (rsrp >= floor_dbm && rsrp > best.rsrp_dbm) best = Measurement{c.id, rsrp};
  }
  return best;
}

}  // namespace cb::ran
