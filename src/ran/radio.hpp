// Radio environment: cells, a log-distance path-loss model, and the mapping
// from signal quality to achievable bearer rate.
//
// CellBricks does not modify the RAN (§3: "requires no changes to the Radio
// Access Network"), so this model serves both the MNO baseline and the
// CellBricks architecture identically — its job is to produce realistic
// coverage, cell-selection, and handover-trigger behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ran/geometry.hpp"

namespace cb::ran {

using CellId = std::uint32_t;

/// Static description of one cell (tower sector).
struct Cell {
  CellId id = 0;
  Point position;
  /// Operator that owns this tower (an MNO name or a bTelco name).
  std::string provider;
  /// Transmit power in dBm (typical macro: 43-46 dBm).
  double tx_power_dbm = 43.0;
  /// Channel bandwidth in Hz (20 MHz LTE carrier by default).
  double bandwidth_hz = 20e6;
};

/// One scan result.
struct Measurement {
  CellId cell = 0;
  double rsrp_dbm = -140.0;
};

/// Radio propagation model and cell registry.
class RadioEnvironment {
 public:
  /// 3GPP-style log-distance macro path loss: L = 128.1 + 37.6 log10(d_km).
  static double path_loss_db(double distance_m);

  /// Received power for `cell` at `where`.
  static double rsrp_dbm(const Cell& cell, const Point& where);

  /// Shannon-like spectral efficiency mapping from SINR, capped at the LTE
  /// practical ceiling; returns achievable PHY rate in bits/s.
  static double achievable_rate_bps(const Cell& cell, const Point& where,
                                    double noise_dbm = -95.0);

  void add_cell(Cell cell);
  const std::vector<Cell>& cells() const { return cells_; }
  const Cell& cell(CellId id) const;

  /// All cells above the detection floor at `where`, strongest first.
  std::vector<Measurement> scan(const Point& where, double floor_dbm = -120.0) const;

  /// Strongest detectable cell, or id 0 when out of coverage.
  Measurement best(const Point& where, double floor_dbm = -120.0) const;

 private:
  std::vector<Cell> cells_;
};

}  // namespace cb::ran
