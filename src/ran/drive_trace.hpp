// Drive-test traces: the (time, position, serving, neighbor-table) sequence
// of one UE's measurement loop, recorded per tick and replayable as a
// Trajectory source. A trace is self-contained — it carries the cell layout
// and the radio/channel/policy configuration that produced it — so a
// committed fixture replays the exact reselection decisions with no other
// repo state (the MobileAtlas-style ground truth for MTTHO calibration).
//
// JSON serialization lives in src/check/trace_io.* (the ran library stays
// free of the checker's JSON dependency).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "ran/radio.hpp"
#include "ran/trajectory.hpp"
#include "ran/ue_radio.hpp"

namespace cb::ran {

struct DriveTestTrace {
  struct Neighbor {
    CellId cell = 0;
    double rsrp_dbm = -140.0;      // instantaneous (channel-noisy) sample
    double filtered_dbm = -140.0;  // L3-filtered quality
  };
  struct Sample {
    Duration at = Duration::zero();  // relative to measurement start
    Point position;
    CellId serving = 0;
    std::vector<Neighbor> neighbors;
  };
  struct Reselection {
    Duration at = Duration::zero();
    CellId from = 0;
    CellId to = 0;
  };

  /// Cell layout of the environment the trace was recorded in.
  std::vector<Cell> cells;
  /// Radio configuration (policy, hysteresis, L3 filter, channel) in effect.
  UeRadioConfig config;
  std::vector<Sample> samples;
  /// The serving-cell changes the recording made (replay ground truth).
  std::vector<Reselection> reselections;

  /// Rebuild the recorded path as a timed trajectory; replaying it over the
  /// same cell layout and config reproduces every sample position bit-exactly
  /// at each measurement tick.
  Trajectory trajectory() const;

  /// MTTHO over the recorded window (excludes the initial acquisition).
  double mttho_s() const;
};

}  // namespace cb::ran
