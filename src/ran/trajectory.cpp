#include "ran/trajectory.hpp"

#include <stdexcept>

namespace cb::ran {

Trajectory::Trajectory(std::vector<Point> waypoints, double speed_mps)
    : waypoints_(std::move(waypoints)), speed_(speed_mps) {
  if (waypoints_.empty()) throw std::invalid_argument("Trajectory: no waypoints");
  if (speed_ <= 0.0) throw std::invalid_argument("Trajectory: speed must be positive");
  cumulative_.reserve(waypoints_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    total_length_ += distance(waypoints_[i - 1], waypoints_[i]);
    cumulative_.push_back(total_length_);
  }
}

Trajectory::Trajectory(std::vector<TimedPoint> samples) : speed_(0.0) {
  if (samples.empty()) throw std::invalid_argument("Trajectory: no samples");
  waypoints_.reserve(samples.size());
  times_.reserve(samples.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) {
      if (samples[i].at <= samples[i - 1].at) {
        throw std::invalid_argument("Trajectory: sample times must increase");
      }
      total_length_ += distance(samples[i - 1].point, samples[i].point);
      cumulative_.push_back(total_length_);
    }
    waypoints_.push_back(samples[i].point);
    times_.push_back(samples[i].at);
  }
  const double span_s = (times_.back() - times_.front()).to_seconds();
  speed_ = span_s > 0.0 ? total_length_ / span_s : 0.0;
}

Point Trajectory::position(Duration t) const {
  if (!times_.empty()) {
    // Timed replay: clamp to the recorded window, then interpolate in time.
    if (t <= times_.front() || waypoints_.size() == 1) return waypoints_.front();
    if (t >= times_.back()) return waypoints_.back();
    std::size_t i = 1;
    while (times_[i] < t) ++i;
    if (times_[i] == t) return waypoints_[i];  // exact tick: bit-exact sample
    const double seg = (times_[i] - times_[i - 1]).to_seconds();
    const double frac = seg > 0.0 ? (t - times_[i - 1]).to_seconds() / seg : 0.0;
    const Point& a = waypoints_[i - 1];
    const Point& b = waypoints_[i];
    return Point{a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac};
  }
  const double travelled = speed_ * t.to_seconds();
  if (travelled <= 0.0 || waypoints_.size() == 1) return waypoints_.front();
  if (travelled >= total_length_) return waypoints_.back();
  // Find the segment containing `travelled`.
  std::size_t i = 1;
  while (cumulative_[i] < travelled) ++i;
  const double seg_start = cumulative_[i - 1];
  const double seg_len = cumulative_[i] - seg_start;
  const double frac = seg_len > 0.0 ? (travelled - seg_start) / seg_len : 0.0;
  const Point& a = waypoints_[i - 1];
  const Point& b = waypoints_[i];
  return Point{a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac};
}

Duration Trajectory::duration() const {
  if (!times_.empty()) return times_.back() - times_.front();
  return Duration::seconds(total_length_ / speed_);
}

Trajectory Trajectory::line(double length_m, double speed_mps) {
  return Trajectory({Point{0, 0}, Point{length_m, 0}}, speed_mps);
}

}  // namespace cb::ran
