// 2-D geometry for tower placement and UE movement.
#pragma once

#include <cmath>

namespace cb::ran {

struct Point {
  double x = 0.0;  // metres
  double y = 0.0;

  constexpr bool operator==(const Point&) const = default;
};

inline double distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace cb::ran
