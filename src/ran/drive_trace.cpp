#include "ran/drive_trace.hpp"

#include <stdexcept>

namespace cb::ran {

Trajectory DriveTestTrace::trajectory() const {
  if (samples.empty()) throw std::invalid_argument("DriveTestTrace: no samples");
  std::vector<TimedPoint> timed;
  timed.reserve(samples.size());
  for (const Sample& s : samples) timed.push_back(TimedPoint{s.at, s.position});
  return Trajectory(std::move(timed));
}

double DriveTestTrace::mttho_s() const {
  if (reselections.size() < 2 || samples.empty()) return 0.0;
  const double span_s = samples.back().at.to_seconds();
  return span_s / static_cast<double>(reselections.size() - 1);
}

}  // namespace cb::ran
