// Per-UE mapping from cells to their tower nodes and this UE's radio link.
// The attach logic (EPC or CellBricks) uses it to bring the right radio
// bearer up and down as the serving cell changes.
#pragma once

#include <stdexcept>
#include <unordered_map>

#include "net/link.hpp"
#include "net/node.hpp"
#include "ran/radio.hpp"

namespace cb::ran {

struct TowerSite {
  net::Node* node = nullptr;    // the tower (or co-located bTelco gateway)
  net::Link* radio_link = nullptr;  // this UE's bearer link to that tower
};

class RanMap {
 public:
  void add(CellId cell, TowerSite site) { sites_[cell] = site; }

  const TowerSite& site(CellId cell) const {
    auto it = sites_.find(cell);
    if (it == sites_.end()) throw std::out_of_range("RanMap: unknown cell");
    return it->second;
  }
  bool contains(CellId cell) const { return sites_.contains(cell); }

  /// All sites (check layer: counting up radio bearers must not depend on
  /// knowing cell ids in advance). Iteration order is unspecified — derive
  /// only order-independent facts (counts, sums) from it.
  const std::unordered_map<CellId, TowerSite>& sites() const { return sites_; }

 private:
  std::unordered_map<CellId, TowerSite> sites_;
};

}  // namespace cb::ran
