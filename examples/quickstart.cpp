// Quickstart: the smallest end-to-end CellBricks run.
//
// Builds a world with two single-tower bTelcos, a broker in the cloud, and
// one subscriber. The UE attaches via the Secure Attachment Protocol, opens
// an MPTCP connection to an internet server, moves to the second bTelco
// (new provider, new IP), and the transfer survives.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

int main() {
  std::printf("CellBricks quickstart\n=====================\n\n");

  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.n_towers = 2;
  cfg.route = RouteSpec{"static", false, 0.1, 500.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  World world(cfg);
  auto& sim = world.simulator();

  // 1. Attach to bTelco #0 via SAP (UE -> bTelco -> brokerd -> back).
  world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) {
    if (!r.ok()) {
      std::printf("attach failed: %s\n", r.error().c_str());
      return;
    }
    std::printf("[%.3fs] attached to %s, IP %s (SAP latency %.2f ms)\n",
                sim.now().to_seconds(), world.btelco(0)->id().c_str(),
                r.value().to_string().c_str(),
                world.ue_agent()->last_attach_latency().to_millis());
  });
  sim.run_for(Duration::s(1));

  // 2. Open an MPTCP connection and start a transfer.
  std::uint64_t received = 0;
  std::shared_ptr<transport::StreamSocket> server_side;
  auto server_transport = world.server_transport();
  server_transport.listen(9000, [&](std::shared_ptr<transport::StreamSocket> s) {
    server_side = std::move(s);
    server_side->on_data = [&](BytesView d) { received += d.size(); };
  });
  auto ue_transport = world.ue_transport();
  auto socket = ue_transport.connect({world.server_addr(), 9000});
  const Bytes chunk(16384, 0x42);
  std::size_t sent = 0;
  auto pump = std::make_shared<std::function<void()>>();
  // The callbacks below keep `pump` alive; capturing it here too would make
  // the function own itself (a shared_ptr cycle LeakSanitizer flags).
  *pump = [&] {
    while (sent < 256 * 1024 * 1024) {
      const std::size_t n = socket->send(chunk);
      if (n == 0) return;
      sent += n;
    }
  };
  socket->on_connected = [pump] { (*pump)(); };
  socket->on_send_space = [pump] { (*pump)(); };
  sim.run_for(Duration::s(2));
  std::printf("[%.3fs] transfer running: %.1f KB delivered\n", sim.now().to_seconds(),
              received / 1e3);

  // 3. Host-driven mobility: detach, re-attach to bTelco #1 (a DIFFERENT
  //    provider — no roaming agreement, no coordination between the two).
  std::printf("[%.3fs] moving: detach from %s...\n", sim.now().to_seconds(),
              world.btelco(0)->id().c_str());
  world.ue_agent()->detach();
  world.ue_agent()->attach(2, [&](Result<net::Ipv4Addr> r) {
    std::printf("[%.3fs] attached to %s, NEW IP %s — MPTCP will add a subflow\n",
                sim.now().to_seconds(), world.btelco(1)->id().c_str(),
                r.value().to_string().c_str());
  });
  sim.run_for(Duration::s(3));

  const std::uint64_t at_switch = received;
  sim.run_for(Duration::s(10));
  std::printf("[%.3fs] transfer continued across providers: %.1f KB more delivered\n",
              sim.now().to_seconds(), (received - at_switch) / 1e3);
  std::printf("\ntotal: %.1f / %.1f KB delivered; broker issued %llu sessions; "
              "billing reports received: %llu\n",
              received / 1e3, sent / 1e3,
              static_cast<unsigned long long>(world.brokerd()->sessions_issued()),
              static_cast<unsigned long long>(world.brokerd()->reports_received()));
  std::printf("%s\n", received > at_switch ? "OK: the connection survived the provider switch."
                                           : "ERROR: transfer stalled!");
  return received > at_switch ? 0 : 1;
}
