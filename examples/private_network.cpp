// Private-network integration (benefit (v) of §3): an enterprise runs its
// own bTelco on campus; an employee's phone transitions seamlessly between
// the public operator's tower and the enterprise's — the SAME SAP exchange,
// the SAME broker subscription, no roaming agreement, no MNO involvement.
//
// A second, unrelated subscriber (from the same broker) is refused by the
// enterprise's authorization policy — controlled integration, not an open
// hotspot. (The broker applies per-bTelco policy via its authorize hook;
// here we model the enterprise restriction as a broker-side allowlist.)
//
//   $ ./examples/private_network
#include <cstdio>

#include "apps/ping.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

int main() {
  std::printf("Enterprise private network as a bTelco\n"
              "======================================\n\n");

  // Tower 1 = public "metro-cell", tower 2 = enterprise "campus-cell".
  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.n_towers = 2;
  cfg.route = RouteSpec{"walk", false, 2.0, 600.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  World world(cfg);
  auto& sim = world.simulator();

  // Enterprise policy: only employees may use btelco-1 (the campus cell).
  // The broker enforces it in its authorization hook — bTelcos delegate
  // policy to brokers (qos/policy split of §4.1), and reputation still
  // applies on top.
  auto& reputation = world.brokerd()->reputation();
  (void)reputation;

  std::printf("employee walks from the metro cell onto campus...\n\n");
  world.ue_agent()->on_attached = [&](ran::CellId cell, Duration latency) {
    std::printf("[%7.2fs] attached to %s (%s) in %.2f ms, IP %s\n", sim.now().to_seconds(),
                world.btelco(cell - 1)->id().c_str(),
                cell == 1 ? "public metro cell" : "ENTERPRISE campus cell",
                latency.to_millis(), world.ue_agent()->current_ip().to_string().c_str());
  };

  apps::PingServer echo(*world.server_node(), 7);
  apps::PingClient ping(*world.ue_node(), {world.server_addr(), 7}, Duration::ms(500));
  world.start();
  sim.run_for(Duration::s(2));
  ping.start();

  // Walk across the boundary (600 m at 2 m/s: crossover ~mid-route).
  sim.run_for(Duration::s(290));
  ping.stop();

  std::printf("\nconnectivity across the transition: %llu probes, %llu lost, p50 RTT %.1f ms\n",
              static_cast<unsigned long long>(ping.sent()),
              static_cast<unsigned long long>(ping.lost()),
              ping.rtts_ms().empty() ? 0.0 : ping.rtts_ms().p50());
  std::printf("provider switches: %llu (public <-> enterprise, no roaming agreement)\n",
              static_cast<unsigned long long>(world.handovers()));
  std::printf("sessions issued by the one broker: %llu\n\n",
              static_cast<unsigned long long>(world.brokerd()->sessions_issued()));

  std::printf("Today this requires neutral-host contracts or dual SIMs; in CellBricks the\n"
              "campus cell is just another bTelco that the employee's broker authorizes.\n");
  return 0;
}
