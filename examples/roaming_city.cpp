// Roaming city: the paper's motivating scenario — a user drives through a
// city where EVERY tower belongs to a different small operator (the §6.2
// extreme design point), streaming video the whole way.
//
// Shows: host-driven mobility across many untrusted providers, per-attach
// SAP latencies, MPTCP survival, video QoE, and the billing trail the
// broker accumulates from both sides of every session.
//
//   $ ./examples/roaming_city
#include <cstdio>

#include "apps/video.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

int main() {
  std::printf("Roaming through a city of single-tower bTelcos\n"
              "==============================================\n\n");

  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.seed = 2026;
  cfg.n_towers = 8;
  cfg.route = RouteSpec{"downtown", true, 14.0, 700.0, ran::RatePolicy::night()};
  World world(cfg);
  auto& sim = world.simulator();

  world.on_cell_change = [&](ran::CellId from, ran::CellId to) {
    if (from == 0) {
      std::printf("[%7.2fs] initial acquisition: cell %u (%s)\n", sim.now().to_seconds(), to,
                  world.btelco(to - 1)->id().c_str());
    } else {
      std::printf("[%7.2fs] provider switch: %s -> %s (host-driven detach + SAP)\n",
                  sim.now().to_seconds(), world.btelco(from - 1)->id().c_str(),
                  world.btelco(to - 1)->id().c_str());
    }
  };
  world.ue_agent()->on_attached = [&](ran::CellId cell, Duration latency) {
    std::printf("[%7.2fs]   attached to cell %u in %.2f ms; new IP %s\n",
                sim.now().to_seconds(), cell, latency.to_millis(),
                world.ue_agent()->current_ip().to_string().c_str());
  };

  apps::HlsServer server(world.server_transport(), 8080);
  world.start();
  sim.run_for(Duration::s(3));

  apps::HlsClient player(world.ue_transport(), {world.server_addr(), 8080}, sim);
  player.start();
  const Duration drive = Duration::s(330);
  sim.run_for(drive);
  player.stop();
  sim.run_for(Duration::s(2));

  std::printf("\n--- drive summary (%.0f s) ---\n", drive.to_seconds());
  std::printf("provider switches:    %llu (MTTHO %.1f s)\n",
              static_cast<unsigned long long>(world.handovers()), world.mttho_s());
  if (const Summary* lat = world.attach_latencies_ms(); lat && !lat->empty()) {
    std::printf("SAP attach latency:   mean %.2f ms, p99 %.2f ms over %zu attaches\n",
                lat->mean(), lat->p99(), lat->count());
  }
  std::printf("video: %llu segments played, avg quality level %.2f/5, %llu rebuffers\n",
              static_cast<unsigned long long>(player.segments_played()),
              player.avg_quality_level(),
              static_cast<unsigned long long>(player.rebuffer_events()));

  std::printf("\n--- broker's view (billing & reputation) ---\n");
  std::printf("sessions issued: %llu   reports received: %llu   rejected: %llu\n",
              static_cast<unsigned long long>(world.brokerd()->sessions_issued()),
              static_cast<unsigned long long>(world.brokerd()->reports_received()),
              static_cast<unsigned long long>(world.brokerd()->reports_rejected()));
  for (std::size_t i = 0; i < world.n_btelcos(); ++i) {
    const std::string id = world.btelco(i)->id();
    std::printf("  %-10s reputation %.2f, mismatches %llu\n", id.c_str(),
                world.brokerd()->reputation().telco_score(id),
                static_cast<unsigned long long>(world.brokerd()->reputation().mismatches(id)));
  }
  std::printf("\nEvery hop above crossed a provider boundary with no roaming agreement —\n"
              "authentication and billing ran through the broker instead.\n");
  return 0;
}
