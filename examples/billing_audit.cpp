// Billing audit: the §4.3 threat model in action.
//
// Scenario A — a bTelco inflates its reported downlink usage by 50%. The
// broker aligns its reports with the UE baseband's signed reports, flags
// the discrepancies (Fig.5 heuristic), decays the bTelco's reputation, and
// eventually refuses to authorize attachments through it — while an honest
// bTelco keeps serving the same user.
//
// Scenario B — a tampered UE under-reports across multiple honest bTelcos;
// the cross-provider pattern puts the USER on the suspect list instead.
//
//   $ ./examples/billing_audit
#include <cstdio>

#include "apps/iperf.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

WorldConfig base_config() {
  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.n_towers = 2;
  cfg.route = RouteSpec{"static", false, 0.1, 500.0, ran::RatePolicy::unlimited()};
  cfg.unlimited_policy = true;
  return cfg;
}

void drive_traffic(World& world, ran::CellId cell, Duration for_time) {
  bool attached = false;
  world.ue_agent()->attach(cell, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
  world.simulator().run_for(Duration::s(2));
  if (!attached) {
    std::printf("  (attach to cell %u DENIED by broker)\n", cell);
    return;
  }
  apps::IperfDownloadClient client(world.ue_transport(), {world.server_addr(), 5001},
                                   world.simulator());
  world.simulator().run_for(for_time);
  std::printf("  cell %u: transferred %.1f MB\n", cell, client.total_bytes() / 1e6);
  world.ue_agent()->detach();
  world.simulator().run_for(Duration::s(1));
}

}  // namespace

int main() {
  std::printf("Scenario A: over-reporting bTelco\n---------------------------------\n");
  {
    WorldConfig cfg = base_config();
    cfg.telco0_overreport = 1.5;  // btelco-0 bills for 50%% more than it served
    World world(cfg);
    apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                                 Duration::s(300));

    std::printf("user streams via the dishonest btelco-0 for 40 s...\n");
    drive_traffic(world, 1, Duration::s(40));

    const auto& rep = world.brokerd()->reputation();
    std::printf("broker compared report pairs: mismatches for btelco-0: %llu, "
                "reputation: %.2f\n",
                static_cast<unsigned long long>(rep.mismatches("btelco-0")),
                rep.telco_score("btelco-0"));

    std::printf("user tries to attach to btelco-0 again:\n");
    drive_traffic(world, 1, Duration::s(5));
    std::printf("user attaches to the honest btelco-1 instead:\n");
    drive_traffic(world, 2, Duration::s(10));
    std::printf("btelco-1 reputation: %.2f; user suspect? %s\n",
                rep.telco_score("btelco-1"),
                rep.is_suspect("user-001") ? "YES (wrong!)" : "no");
  }

  std::printf("\nScenario B: tampered UE under-reporting\n"
              "---------------------------------------\n");
  {
    WorldConfig cfg = base_config();
    cfg.ue_underreport = 0.5;  // baseband reports half the real usage
    World world(cfg);
    apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                                 Duration::s(300));

    std::printf("tampered UE streams via honest btelco-0, then btelco-1...\n");
    drive_traffic(world, 1, Duration::s(35));
    drive_traffic(world, 2, Duration::s(35));

    const auto& rep = world.brokerd()->reputation();
    std::printf("mismatches recorded: btelco-0: %llu, btelco-1: %llu\n",
                static_cast<unsigned long long>(rep.mismatches("btelco-0")),
                static_cast<unsigned long long>(rep.mismatches("btelco-1")));
    std::printf("user-001 on the suspect list? %s (disagreeing with >=2 independent\n"
                "providers points at the user, not the providers)\n",
                rep.is_suspect("user-001") ? "YES" : "no");
    std::printf("future attach attempts by the suspect:\n");
    drive_traffic(world, 1, Duration::s(5));
  }

  std::printf("\nDone. Dishonesty on either side of the radio shows up as report\n"
              "discrepancies beyond the loss-adjusted Fig.5 threshold; the reputation\n"
              "system attributes it to the right party.\n");
  return 0;
}
