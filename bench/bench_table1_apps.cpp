// Table 1 — Application performance, CellBricks vs today's cellular (MNO):
// MTTHO, ping p50, iperf throughput, VoIP MOS, HLS video quality level, and
// web page load time across {suburb, downtown, highway} x {day, night}.
//
// The paper's headline: overall slowdown between -1.61% and +3.06%.
// Duration per app run is configurable via CB_TABLE1_DURATION (seconds).
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "scenario/table1.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct PaperRow {
  const char* route;
  double mttho, ping, iperf, mos, video, web;  // CellBricks rows of Table 1
};
constexpr PaperRow kPaperCb[] = {
    {"Suburb/D", 73.50, 45.95, 1.20, 4.35, 1.98, 4.96},
    {"Suburb/N", 65.60, 46.71, 16.85, 4.33, 4.91, 1.76},
    {"Downtown/D", 68.16, 49.60, 1.11, 4.25, 1.97, 5.22},
    {"Downtown/N", 50.60, 48.53, 15.41, 4.32, 4.94, 1.89},
    {"Highway/D", 44.72, 49.48, 1.11, 4.27, 1.97, 5.18},
    {"Highway/N", 25.50, 48.38, 12.42, 4.30, 4.90, 1.80},
};

double pct(double cb, double mno) { return mno != 0.0 ? (1.0 - cb / mno) * 100.0 : 0.0; }

}  // namespace

int main() {
  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  Table1Options opt;
  if (const char* env = std::getenv("CB_TABLE1_DURATION")) {
    opt.duration = Duration::s(std::atol(env));
  }
  std::printf("=== Table 1: application performance, MNO (TCP, network handover) vs "
              "CellBricks (MPTCP, host-driven mobility) ===\n");
  std::printf("Per-app drive duration: %.0f s. Paper CB values shown for reference.\n\n",
              opt.duration.to_seconds());
  std::printf("%-11s %-4s %9s %9s %11s %6s %7s %7s\n", "route", "arch", "MTTHO(s)",
              "ping(ms)", "iperf(mbps)", "MOS", "video", "web(s)");

  const auto routes = all_routes();
  double slow_iperf_n = 0, slow_mos_n = 0, slow_video_n = 0, slow_web_n = 0;
  double slow_iperf_d = 0, slow_mos_d = 0, slow_video_d = 0, slow_web_d = 0;
  int routes_done = 0;

  for (std::size_t i = 0; i < routes.size(); ++i) {
    const RouteSpec& route = routes[i];
    const Table1Cell mno = run_table1_cell(Architecture::Mno, route, opt);
    const Table1Cell cbr = run_table1_cell(Architecture::CellBricks, route, opt);

    std::printf("%-11s %-4s %9s %9.2f %11.2f %6.2f %7.2f %7.2f\n", route.name.c_str(), "MNO",
                "-", mno.ping_p50_ms, mno.iperf_mbps, mno.voip_mos, mno.video_level,
                mno.web_load_s);
    std::printf("%-11s %-4s %9.2f %9.2f %11.2f %6.2f %7.2f %7.2f\n", route.name.c_str(), "CB",
                cbr.mttho_s, cbr.ping_p50_ms, cbr.iperf_mbps, cbr.voip_mos, cbr.video_level,
                cbr.web_load_s);
    const PaperRow& p = kPaperCb[i];
    std::printf("%-11s %-4s %9.2f %9.2f %11.2f %6.2f %7.2f %7.2f\n\n", "  (paper CB)", "",
                p.mttho, p.ping, p.iperf, p.mos, p.video, p.web);

    // Accumulate overall slowdown (positive = CB worse), like the last rows
    // of Table 1: higher-is-better metrics use 1 - cb/mno, load time uses
    // cb/mno - 1.
    slow_iperf_n += pct(cbr.iperf_mbps, mno.iperf_mbps);
    slow_mos_n += pct(cbr.voip_mos, mno.voip_mos);
    slow_video_n += pct(cbr.video_level, mno.video_level);
    slow_web_n += -pct(cbr.web_load_s, mno.web_load_s);
    slow_iperf_d += 1;
    slow_mos_d += 1;
    slow_video_d += 1;
    slow_web_d += 1;
    ++routes_done;
  }

  std::printf("Overall perf. slowdown of CellBricks (positive = CB worse):\n");
  std::printf("  iperf: %+.2f%%   VoIP MOS: %+.2f%%   video: %+.2f%%   web: %+.2f%%\n",
              slow_iperf_n / slow_iperf_d, slow_mos_n / slow_mos_d,
              slow_video_n / slow_video_d, slow_web_n / slow_web_d);
  std::printf("  (paper: iperf 2.06-3.06%%, MOS 0.92-1.15%%, video -0.20-0.51%%, "
              "web -1.61-2.60%%)\n");
  std::printf("\n%s\n", metrics.digest().c_str());
  return 0;
}
