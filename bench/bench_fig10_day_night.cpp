// Fig.10 (Appendix A) — iperf throughput over the downtown route, day vs
// night: reproduces the bimodal pattern created by the operator's
// time-of-day rate limiting (paper: night mean 14.95 Mb/s ~ 14.5x the day's
// 1.03 Mb/s; night std 8.94 vs day 0.32; peaks 52.5 vs 1.75 Mb/s).
//
// With --fluid [N] the same day-vs-night contrast is produced at fluid-
// engine populations (default 20k UEs; ROADMAP item 1 tail): N bulk
// downloads under the Appendix-A day or night shaper policy, sampled every
// 10 s as aggregate delivered goodput per UE. Single-UE iperf measures one
// subscriber's radio; the fluid curve shows the same policy shaping an
// operator-scale population — same bimodal ratio, obtained ~10^4x faster
// than packet fidelity would allow.
//
// Usage: bench_fig10_day_night [--fluid [N_UES]]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "apps/iperf.hpp"
#include "common/stats.hpp"
#include "scenario/scale_traffic.hpp"
#include "scenario/world.hpp"
#include "sim/simulator.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct Stats {
  double mean, stddev, peak;
  std::vector<double> series;
};

Stats run(const RouteSpec& route) {
  WorldConfig cfg;
  cfg.arch = Architecture::Mno;  // Fig.10 measured today's MNO network
  cfg.seed = 10;
  cfg.route = route;
  const double distance = route.speed_mps * 520.0;
  cfg.n_towers = static_cast<int>(distance / route.tower_spacing_m) + 3;
  World world(cfg);
  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(520));
  world.start();
  world.simulator().run_for(Duration::s(5));
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  world.simulator().run_for(Duration::s(500));

  Stats out;
  Summary s;
  const auto rates = client.series().rates();
  for (std::size_t i = 6; i < rates.size(); ++i) {
    const double mbps = rates[i] * 8.0 / 1e6;
    s.add(mbps);
    out.series.push_back(mbps);
  }
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.peak = s.max();
  return out;
}

/// Fluid-population variant: N bulk flows under the day or night shaper,
/// sampled as aggregate delivered goodput per UE every 10 s. Flows are
/// sized to span the window (the shaper, not completion, shapes the curve),
/// resampling caps at the Appendix-A cadence so the series fluctuates the
/// way Fig.10's per-UE trace does.
Stats run_fluid(bool night, int n_ues) {
  constexpr double kHorizonS = 520.0;
  constexpr double kSampleS = 10.0;
  ScaleTrafficConfig cfg;
  cfg.mode = TrafficMode::Fluid;
  cfg.n_ues = n_ues;
  // Thin cells (8 active bulk UEs each): the 150 Mb/s scheduler then has
  // per-UE headroom at the night policy's mean, so the time-of-day shaper —
  // the thing Fig.10 measures — is what binds; night's high draws still see
  // realistic cell contention, which clips the peaks the way a loaded
  // sector would.
  cfg.n_cells = std::max(1, n_ues / 8);
  cfg.seed = 10;
  cfg.night = night;
  cfg.mean_flow_mbytes = 5000.0;  // most flows outlive the 520 s window even at night rates
  cfg.start_window_s = 5.0;
  cfg.shaper_resample_s = 30.0;
  cfg.horizon_s = kHorizonS;

  ScaleTrafficSim sim(cfg);
  sim.start();
  Stats out;
  Summary s;
  double prev_bytes = 0.0;
  for (int k = 1; k * kSampleS <= kHorizonS; ++k) {
    sim.simulator().schedule_at(
        TimePoint::zero() + Duration::seconds(k * kSampleS), [&] {
          const double bytes = sim.delivered_now();
          const double mbps = (bytes - prev_bytes) * 8.0 / kSampleS / 1e6 / n_ues;
          prev_bytes = bytes;
          s.add(mbps);
          out.series.push_back(mbps);
        });
  }
  sim.simulator().run_until(TimePoint::zero() + Duration::seconds(kHorizonS));
  sim.collect();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.peak = s.max();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool fluid = false;
  int fluid_ues = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fluid") == 0) {
      fluid = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') fluid_ues = std::atoi(argv[++i]);
    }
  }

  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  Stats day, night;
  if (fluid) {
    std::printf("=== Fig.10 at scale: %d-UE fluid population, Day vs Night shaper "
                "(per-UE delivered goodput) ===\n\n", fluid_ues);
    day = run_fluid(false, fluid_ues);
    night = run_fluid(true, fluid_ues);
  } else {
    std::printf("=== Fig.10: downtown iperf throughput, Day vs Night rate policy ===\n\n");
    day = run(downtown_day());
    night = run(downtown_night());
  }

  if (fluid) {
    std::printf("per-UE goodput (mbps), every 10 s:\n%5s %8s %8s\n", "t(s)", "Day", "Night");
    for (std::size_t i = 0; i < std::min(day.series.size(), night.series.size()); ++i) {
      std::printf("%5zu %8.2f %8.2f\n", (i + 1) * 10, day.series[i], night.series[i]);
    }
  } else {
    std::printf("throughput (mbps), every 10 s:\n%5s %8s %8s\n", "t(s)", "Day", "Night");
    for (std::size_t i = 0; i + 10 <= std::min(day.series.size(), night.series.size());
         i += 10) {
      double d = 0, n = 0;
      for (std::size_t k = i; k < i + 10; ++k) {
        d += day.series[k];
        n += night.series[k];
      }
      std::printf("%5zu %8.2f %8.2f\n", i, d / 10, n / 10);
    }
  }

  std::printf("\n%8s %8s %8s %8s\n", "", "mean", "stddev", "peak");
  std::printf("%8s %8.2f %8.2f %8.2f   (paper: 1.03, 0.32, 1.75)\n", "Day", day.mean,
              day.stddev, day.peak);
  std::printf("%8s %8.2f %8.2f %8.2f   (paper: 14.95, 8.94, 52.5)\n", "Night", night.mean,
              night.stddev, night.peak);
  std::printf("night/day mean ratio: %.1fx (paper: 14.5x)\n", night.mean / day.mean);
  std::printf("\n%s\n", metrics.digest().c_str());
  return 0;
}
