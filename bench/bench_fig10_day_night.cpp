// Fig.10 (Appendix A) — iperf throughput over the downtown route, day vs
// night: reproduces the bimodal pattern created by the operator's
// time-of-day rate limiting (paper: night mean 14.95 Mb/s ~ 14.5x the day's
// 1.03 Mb/s; night std 8.94 vs day 0.32; peaks 52.5 vs 1.75 Mb/s).
#include <cstdio>

#include "obs/metrics.hpp"
#include "apps/iperf.hpp"
#include "common/stats.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct Stats {
  double mean, stddev, peak;
  std::vector<double> series;
};

Stats run(const RouteSpec& route) {
  WorldConfig cfg;
  cfg.arch = Architecture::Mno;  // Fig.10 measured today's MNO network
  cfg.seed = 10;
  cfg.route = route;
  const double distance = route.speed_mps * 520.0;
  cfg.n_towers = static_cast<int>(distance / route.tower_spacing_m) + 3;
  World world(cfg);
  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(520));
  world.start();
  world.simulator().run_for(Duration::s(5));
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  world.simulator().run_for(Duration::s(500));

  Stats out;
  Summary s;
  const auto rates = client.series().rates();
  for (std::size_t i = 6; i < rates.size(); ++i) {
    const double mbps = rates[i] * 8.0 / 1e6;
    s.add(mbps);
    out.series.push_back(mbps);
  }
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.peak = s.max();
  return out;
}

}  // namespace

int main() {
  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  std::printf("=== Fig.10: downtown iperf throughput, Day vs Night rate policy ===\n\n");
  const Stats day = run(downtown_day());
  const Stats night = run(downtown_night());

  std::printf("throughput (mbps), every 10 s:\n%5s %8s %8s\n", "t(s)", "Day", "Night");
  for (std::size_t i = 0; i + 10 <= std::min(day.series.size(), night.series.size());
       i += 10) {
    double d = 0, n = 0;
    for (std::size_t k = i; k < i + 10; ++k) {
      d += day.series[k];
      n += night.series[k];
    }
    std::printf("%5zu %8.2f %8.2f\n", i, d / 10, n / 10);
  }

  std::printf("\n%8s %8s %8s %8s\n", "", "mean", "stddev", "peak");
  std::printf("%8s %8.2f %8.2f %8.2f   (paper: 1.03, 0.32, 1.75)\n", "Day", day.mean,
              day.stddev, day.peak);
  std::printf("%8s %8.2f %8.2f %8.2f   (paper: 14.95, 8.94, 52.5)\n", "Night", night.mean,
              night.stddev, night.peak);
  std::printf("night/day mean ratio: %.1fx (paper: 14.5x)\n", night.mean / day.mean);
  std::printf("\n%s\n", metrics.digest().c_str());
  return 0;
}
