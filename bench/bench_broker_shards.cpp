// Sharded-broker scaling + failover benchmark (DESIGN.md §12).
//
// Two experiments against the replicated-settlement-log broker cluster,
// driven by the synthetic SAP/report load generator (broker_loadgen.hpp):
//
//   1. Scaling: a fixed report-ingest load offered to 1/2/4/8 shards. The
//      offered rate is sized above one shard's report service capacity
//      (report_service_time = 1 ms -> ~1000 rps/shard), so the single-shard
//      point saturates and the curve shows ingest spreading across bucket
//      owners.
//   2. Failover availability: 4 shards under steady load; one shard is
//      killed at t=10 s for 10 s. The acceptance gate: ZERO billing verdicts
//      lost (every ingested report pair gets exactly one verdict, possibly
//      late) and no verdict-content conflicts from failover double-pairing.
//
// Determinism: --replay runs the failover trial twice with the same seed and
// compares run fingerprints; divergence exits nonzero (CI hard gate, also
// the chaos-replay leg of tools/ci.sh).
//
// Usage: bench_broker_shards [--smoke] [--json FILE] [--replay]
//   --smoke   shorter load phase + fewer clients (CI schema check)
//   --json    also write machine-readable results to FILE
//   --replay  determinism gate only (skips the scaling sweep)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/broker_loadgen.hpp"
#include "scenario/trial_runner.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScalePoint {
  int n_shards = 0;
  BrokerLoadgenResult r;
  double wall_s = 0.0;
};

BrokerLoadgenConfig scaling_config(int n_shards, bool smoke) {
  BrokerLoadgenConfig cfg;
  cfg.n_shards = n_shards;
  // 48 clients x 2 reports / 80 ms = 1200 rps offered: above a single
  // shard's ~1000 rps report service capacity, below two shards'.
  cfg.n_clients = smoke ? 8 : 48;
  cfg.report_interval = Duration::millis(80);
  cfg.duration_s = smoke ? 5.0 : 30.0;
  cfg.drain_s = smoke ? 20.0 : 60.0;
  cfg.seed = 42;
  return cfg;
}

BrokerLoadgenConfig failover_config(bool smoke) {
  BrokerLoadgenConfig cfg;
  cfg.n_shards = 4;
  cfg.n_clients = smoke ? 8 : 32;
  cfg.report_interval = Duration::millis(500);
  cfg.duration_s = smoke ? 12.0 : 30.0;
  cfg.drain_s = 60.0;  // full: pair_timeout (45 s) + takeover slack
  cfg.seed = 42;
  cfg.kill_shard = 1;
  cfg.kill_at_s = smoke ? 3.0 : 10.0;
  cfg.kill_duration_s = smoke ? 5.0 : 10.0;
  return cfg;
}

void print_result(const char* tag, const BrokerLoadgenResult& r) {
  std::printf(
      "  %-10s sessions=%llu ingested=%llu (%.0f rps) acked=%llu/%llu "
      "abandoned=%llu redirects=%llu takeovers=%llu\n"
      "  %-10s verdicts: paired=%llu missing=%llu conflicts=%llu LOST=%llu "
      "ack p50/p99=%.1f/%.1f ms\n",
      tag, (unsigned long long)r.sessions_issued, (unsigned long long)r.reports_ingested,
      r.ingest_rps, (unsigned long long)r.reports_acked, (unsigned long long)r.reports_sent,
      (unsigned long long)r.reports_abandoned, (unsigned long long)r.redirects_sent,
      (unsigned long long)r.takeovers, "", (unsigned long long)r.verdicts_paired,
      (unsigned long long)r.verdicts_missing, (unsigned long long)r.verdict_conflicts,
      (unsigned long long)r.verdicts_lost, r.ack_p50_ms, r.ack_p99_ms);
}

void json_result(FILE* f, const BrokerLoadgenResult& r, double wall_s) {
  std::fprintf(f,
               "{\"sessions_issued\": %llu, \"reports_sent\": %llu, "
               "\"reports_acked\": %llu, \"reports_abandoned\": %llu, "
               "\"reports_ingested\": %llu, \"reports_deduped\": %llu, "
               "\"ingest_rps\": %.1f, \"redirects_sent\": %llu, "
               "\"takeovers\": %llu, \"verdicts_paired\": %llu, "
               "\"verdicts_missing\": %llu, \"verdict_conflicts\": %llu, "
               "\"verdicts_lost\": %llu, \"ack_p50_ms\": %.2f, "
               "\"ack_p99_ms\": %.2f, \"fingerprint\": \"%llx\", "
               "\"wall_s\": %.2f}",
               (unsigned long long)r.sessions_issued, (unsigned long long)r.reports_sent,
               (unsigned long long)r.reports_acked, (unsigned long long)r.reports_abandoned,
               (unsigned long long)r.reports_ingested, (unsigned long long)r.reports_deduped,
               r.ingest_rps, (unsigned long long)r.redirects_sent,
               (unsigned long long)r.takeovers, (unsigned long long)r.verdicts_paired,
               (unsigned long long)r.verdicts_missing,
               (unsigned long long)r.verdict_conflicts, (unsigned long long)r.verdicts_lost,
               r.ack_p50_ms, r.ack_p99_ms, (unsigned long long)r.fingerprint(), wall_s);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, replay_only = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--replay") == 0) replay_only = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  bool ok = true;

  // --- Determinism gate: same seed, same config -> identical fingerprint ---
  std::printf("# Failover determinism (two same-seed runs)\n");
  const BrokerLoadgenConfig fo_cfg = failover_config(smoke || replay_only);
  double wall0 = now_s();
  BrokerLoadgenResult fo_a = BrokerLoadgen(fo_cfg).run();
  const double fo_wall = now_s() - wall0;
  BrokerLoadgenResult fo_b = BrokerLoadgen(fo_cfg).run();
  const bool replay_ok = fo_a.fingerprint() == fo_b.fingerprint();
  std::printf("  fingerprints %016llx / %016llx -> %s\n",
              (unsigned long long)fo_a.fingerprint(), (unsigned long long)fo_b.fingerprint(),
              replay_ok ? "IDENTICAL" : "DIVERGED (FAIL)");
  ok = ok && replay_ok;

  // --- Failover availability gate ---
  std::printf("# Failover: kill shard %d at %.0fs for %.0fs (%d shards, %d clients)\n",
              fo_cfg.kill_shard, fo_cfg.kill_at_s, fo_cfg.kill_duration_s, fo_cfg.n_shards,
              fo_cfg.n_clients);
  print_result("failover", fo_a);
  const bool failover_ok = fo_a.verdicts_lost == 0 && fo_a.verdict_conflicts == 0 &&
                           fo_a.takeovers > 0 && fo_a.sessions_issued > 0;
  std::printf("  gate: lost=0 conflicts=0 takeovers>0 -> %s\n",
              failover_ok ? "PASS" : "FAIL");
  ok = ok && failover_ok;

  std::vector<ScalePoint> points;
  if (!replay_only) {
    // --- Scaling sweep (independent sims -> thread pool) ---
    std::printf("# Scaling: %d clients @ %.0f ms period vs shard count\n",
                scaling_config(1, smoke).n_clients,
                scaling_config(1, smoke).report_interval.to_millis());
    for (int n : {1, 2, 4, 8}) {
      ScalePoint p;
      p.n_shards = n;
      points.push_back(std::move(p));
    }
    TrialRunner runner;
    runner.map(points.size(), [&points, smoke](std::size_t i) {
      const double w0 = now_s();
      points[i].r = BrokerLoadgen(scaling_config(points[i].n_shards, smoke)).run();
      points[i].wall_s = now_s() - w0;
      return 0;
    });
    for (const auto& p : points) {
      std::printf("shards=%d\n", p.n_shards);
      print_result("scale", p.r);
      // Gate: every offered report eventually ingested+deduped (no loss in
      // steady state) and zero pairing anomalies at every shard count.
      const bool point_ok = p.r.verdicts_lost == 0 && p.r.verdict_conflicts == 0 &&
                            p.r.attach_failures == 0 && p.r.sessions_issued > 0;
      if (!point_ok) {
        std::printf("  gate FAIL at shards=%d\n", p.n_shards);
        ok = false;
      }
    }
    // The sharded points must clear the single-shard saturation ceiling.
    if (points.size() == 4 && points[0].r.ingest_rps > 0) {
      const double speedup = points[2].r.ingest_rps / points[0].r.ingest_rps;
      std::printf("# 4-shard / 1-shard sustained ingest: %.2fx\n", speedup);
    }
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror("bench_broker_shards: --json open");
      return 1;
    }
    std::fprintf(f, "{\n  \"smoke\": %s,\n  \"replay_identical\": %s,\n",
                 smoke ? "true" : "false", replay_ok ? "true" : "false");
    std::fprintf(f, "  \"failover\": ");
    json_result(f, fo_a, fo_wall);
    std::fprintf(f, ",\n  \"scaling\": [");
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f, "%s\n    {\"n_shards\": %d, \"point\": ", i ? "," : "",
                   points[i].n_shards);
      json_result(f, points[i].r, points[i].wall_s);
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  std::printf("%s\n", ok ? "bench_broker_shards: OK" : "bench_broker_shards: FAILED");
  return ok ? 0 : 1;
}
