// Scaling benchmark — the §6 claim that CellBricks "scales to a large
// number of users under different radio conditions": an attach storm of N
// concurrent UEs against one bTelco/brokerd (and the EPC baseline), plus a
// control-path loss sweep exercising the SAP retransmission machinery.
#include <cstdio>

#include "scenario/attach_experiment.hpp"

using namespace cb;
using namespace cb::scenario;

int main() {
  std::printf("=== Scale: N simultaneous attach requests (one cell, brokerd at "
              "us-west RTT) ===\n\n");
  std::printf("%6s %-4s %12s %12s %10s\n", "N UEs", "arch", "mean(ms)", "p99(ms)",
              "completed");
  for (int n : {1, 10, 50, 100, 200}) {
    for (Architecture arch : {Architecture::Mno, Architecture::CellBricks}) {
      const AttachStorm s =
          run_attach_storm(arch, n, Duration::millis(7.2), /*control_loss=*/0.0);
      std::printf("%6d %-4s %12.2f %12.2f %6d/%d\n", n,
                  arch == Architecture::CellBricks ? "CB" : "BL", s.mean_ms, s.p99_ms,
                  s.completed, n);
    }
  }
  std::printf("\n(Queueing at the serial control-plane services dominates at high N;\n"
              " CB queues once at brokerd, BL queues twice at the HSS.)\n");

  std::printf("\n=== Degraded control path: 50 UEs, loss on the tower<->cloud link "
              "(CellBricks, SAP retransmission active) ===\n\n");
  std::printf("%8s %12s %12s %10s\n", "loss", "mean(ms)", "p99(ms)", "completed");
  for (double loss : {0.0, 0.01, 0.05, 0.10}) {
    const AttachStorm s = run_attach_storm(Architecture::CellBricks, 50,
                                           Duration::millis(7.2), loss);
    std::printf("%7.0f%% %12.2f %12.2f %7d/50\n", loss * 100, s.mean_ms, s.p99_ms,
                s.completed);
  }
  std::printf("\n(Lost SAP datagrams are recovered by the bTelco's 1 s retransmission;\n"
              " completion stays high while tail latency grows with loss.)\n");
  return 0;
}
