// Scaling benchmark — the §6 claim that CellBricks "scales to a large
// number of users under different radio conditions": an attach storm of N
// concurrent UEs against one bTelco/brokerd (and the EPC baseline), plus a
// control-path loss sweep exercising the SAP retransmission machinery.
//
// Every sweep point is an independent seeded Simulator, so points run
// concurrently on a TrialRunner thread pool; results are collected in
// submission order and the tables print identically to a sequential run.
//
// Usage: bench_scale_users [--smoke] [--json FILE] [--no-metrics]
//   --smoke       small point set (CI schema check, not a measurement)
//   --json        also write machine-readable results + wall-clock to FILE
//   --no-metrics  run with observability disabled (instrumentation-overhead
//                 baseline for tools/bench.sh)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/attach_experiment.hpp"
#include "scenario/trial_runner.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct StormPoint {
  int n_ues;
  Architecture arch;
  double loss;
  AttachStorm result;
};

const char* arch_name(Architecture a) { return a == Architecture::CellBricks ? "CB" : "BL"; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool metrics_enabled = true;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    else if (std::strcmp(argv[i], "--no-metrics") == 0) metrics_enabled = false;
  }

  // Root registry for the whole bench: TrialRunner gives each sweep point a
  // private per-trial registry and merges them back here in index order, so
  // the snapshot below is byte-identical across same-seed runs regardless of
  // thread count or completion order.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(metrics_enabled ? &metrics : nullptr);

  const std::vector<int> storm_sizes = smoke ? std::vector<int>{1, 10}
                                             : std::vector<int>{1, 10, 50, 100, 200};
  const std::vector<double> losses = smoke ? std::vector<double>{0.0, 0.05}
                                           : std::vector<double>{0.0, 0.01, 0.05, 0.10};
  const int loss_ues = smoke ? 10 : 50;

  std::vector<StormPoint> points;
  for (int n : storm_sizes) {
    for (Architecture arch : {Architecture::Mno, Architecture::CellBricks}) {
      points.push_back({n, arch, 0.0, {}});
    }
  }
  std::vector<StormPoint> loss_points;
  for (double loss : losses) {
    loss_points.push_back({loss_ues, Architecture::CellBricks, loss, {}});
  }

  const auto wall_start = std::chrono::steady_clock::now();
  TrialRunner runner;
  {
    auto storm = runner.map(points.size(), [&](std::size_t i) {
      const StormPoint& p = points[i];
      return run_attach_storm(p.arch, p.n_ues, Duration::millis(7.2), p.loss);
    });
    for (std::size_t i = 0; i < points.size(); ++i) points[i].result = storm[i];

    auto swept = runner.map(loss_points.size(), [&](std::size_t i) {
      const StormPoint& p = loss_points[i];
      return run_attach_storm(p.arch, p.n_ues, Duration::millis(7.2), p.loss);
    });
    for (std::size_t i = 0; i < loss_points.size(); ++i) loss_points[i].result = swept[i];
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  std::printf("=== Scale: N simultaneous attach requests (one cell, brokerd at "
              "us-west RTT) ===\n\n");
  std::printf("%6s %-4s %12s %12s %10s\n", "N UEs", "arch", "mean(ms)", "p99(ms)",
              "completed");
  for (const StormPoint& p : points) {
    std::printf("%6d %-4s %12.2f %12.2f %6d/%d\n", p.n_ues, arch_name(p.arch),
                p.result.mean_ms, p.result.p99_ms, p.result.completed, p.n_ues);
  }
  std::printf("\n(Queueing at the serial control-plane services dominates at high N;\n"
              " CB queues once at brokerd, BL queues twice at the HSS.)\n");

  std::printf("\n=== Degraded control path: %d UEs, loss on the tower<->cloud link "
              "(CellBricks, SAP retransmission active) ===\n\n", loss_ues);
  std::printf("%8s %12s %12s %10s\n", "loss", "mean(ms)", "p99(ms)", "completed");
  for (const StormPoint& p : loss_points) {
    std::printf("%7.0f%% %12.2f %12.2f %7d/%d\n", p.loss * 100, p.result.mean_ms,
                p.result.p99_ms, p.result.completed, p.n_ues);
  }
  std::printf("\n(Lost SAP datagrams are recovered by the bTelco's 1 s retransmission;\n"
              " completion stays high while tail latency grows with loss.)\n");

  std::printf("\nwall-clock: %.3f s on %u threads%s\n", wall_s, runner.thread_count(),
              smoke ? " (smoke mode)" : "");
  if (metrics_enabled) std::printf("%s\n", metrics.digest().c_str());

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"scale_users\",\n  \"mode\": \"%s\",\n"
                 "  \"wall_s\": %.3f,\n  \"threads\": %u,\n  \"points\": [\n",
                 smoke ? "smoke" : "full", wall_s, runner.thread_count());
    bool first = true;
    auto emit = [&](const StormPoint& p) {
      std::fprintf(f,
                   "%s    {\"n_ues\": %d, \"arch\": \"%s\", \"loss\": %.2f, "
                   "\"mean_ms\": %.2f, \"p99_ms\": %.2f, \"completed\": %d}",
                   first ? "" : ",\n", p.n_ues, arch_name(p.arch), p.loss,
                   p.result.mean_ms, p.result.p99_ms, p.result.completed);
      first = false;
    };
    for (const StormPoint& p : points) emit(p);
    for (const StormPoint& p : loss_points) emit(p);
    std::fprintf(f, "\n  ],\n  \"metrics_enabled\": %s",
                 metrics_enabled ? "true" : "false");
    if (metrics_enabled) {
      std::fprintf(f, ",\n  \"metrics\": %s", metrics.to_json().c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
  }
  return 0;
}
