// Scaling benchmark — the §6 claim that CellBricks "scales to a large
// number of users under different radio conditions": an attach storm of N
// concurrent UEs against one bTelco/brokerd (and the EPC baseline), plus a
// control-path loss sweep exercising the SAP retransmission machinery.
//
// With --fluid it also measures the hybrid traffic engine (DESIGN.md §11):
//   - the scale curve: bulk-download workloads at 1k/10k/100k UEs in fluid
//     mode, reporting wall-clock, simulated-seconds-per-wall-second, and
//     peak RSS — the numbers behind the 100k-1M-UE claim;
//   - the packet-vs-fluid agreement gate at small N: same seed-derived
//     workload through both fidelity modes must agree byte-exactly on
//     delivered bytes + billing and within the documented tolerance on
//     completion times. Disagreement exits nonzero (CI hard gate).
//
// Every sweep point is an independent seeded Simulator, so points run
// concurrently on a TrialRunner thread pool; results are collected in
// submission order and the tables print identically to a sequential run.
// The fluid scale-curve points run sequentially so each point's wall-clock
// and peak-RSS delta are attributable to that point alone.
//
// Usage: bench_scale_users [--smoke] [--fluid] [--fluid-threads N]
//                          [--json FILE] [--no-metrics]
//   --smoke          small point set (CI schema check, not a measurement)
//   --fluid          add the fluid scale curve + the agreement gates
//   --fluid-threads  worker threads for the fluid engine's reallocation
//                    drain on the curve points (default 1; any value is
//                    bit-identical — the 1-vs-4 gate below proves it)
//   --json           also write machine-readable results + wall-clock to FILE
//   --no-metrics     run with observability disabled (instrumentation-
//                    overhead baseline for tools/bench.sh)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/attach_experiment.hpp"
#include "scenario/scale_traffic.hpp"
#include "scenario/trial_runner.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct StormPoint {
  int n_ues;
  Architecture arch;
  double loss;
  AttachStorm result;
  double wall_s = 0.0;
};

struct FluidPoint {
  int n_ues;
  ScaleTrafficResult result;
  double wall_s = 0.0;
  double peak_rss_mb = 0.0;
};

struct Agreement {
  int n_ues = 0;
  bool bytes_exact = false;
  bool billing_exact = false;
  double fluid_mean_s = 0.0, packet_mean_s = 0.0;
  double fluid_p99_s = 0.0, packet_p99_s = 0.0;
  double mean_err = 0.0, p99_err = 0.0;  // relative to packet ground truth
  bool pass = false;
};

const char* arch_name(Architecture a) { return a == Architecture::CellBricks ? "CB" : "BL"; }

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak RSS (VmHWM) in MB from /proc/self/status; 0 when unavailable.
double peak_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::sscanf(line, "VmHWM: %lf", &kb) == 1) break;
  }
  std::fclose(f);
  return kb / 1024.0;
}

/// Reset the kernel's peak-RSS watermark so each curve point reads its OWN
/// peak: VmHWM is a process-lifetime high-water mark, so without the reset
/// later points inherit earlier points' peaks and the 1M memory number
/// would be a lie. Returns false when /proc/self/clear_refs is unavailable
/// (non-Linux); callers fall back to reporting the watermark delta.
bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (!f) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return std::fclose(f) == 0 && ok;
}

/// Tracks which pool workers actually executed a trial, so the JSON can
/// report threads *used* rather than the pool size (on a small point set
/// the pool may be larger than the number of concurrent trials).
class ThreadUse {
 public:
  void note() {
    std::lock_guard<std::mutex> lock(mu_);
    ids_.insert(std::this_thread::get_id());
  }
  unsigned count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<unsigned>(ids_.size());
  }

 private:
  mutable std::mutex mu_;
  std::set<std::thread::id> ids_;
};

ScaleTrafficConfig curve_config(int n_ues, int fluid_threads = 1) {
  ScaleTrafficConfig cfg;
  cfg.mode = TrafficMode::Fluid;
  cfg.n_ues = n_ues;
  cfg.seed = 42;
  cfg.mean_flow_mbytes = 5.0;
  cfg.start_window_s = 10.0;
  cfg.shaper_resample_s = 30.0;
  cfg.horizon_s = 3600.0;
  cfg.fluid_threads = fluid_threads;
  return cfg;
}

/// The parallel-determinism gate (DESIGN.md §13): the same curve point at 1
/// and 4 drain threads must produce the same fingerprint (delivered bytes,
/// billing, segment ledger, event counts — all folded in) and byte-identical
/// metrics snapshots. Mismatch exits nonzero, like the agreement gate.
/// Necessary but not sufficient: a preemption-timing-dependent data race can
/// pass output equality on virtually every run, so the race class itself is
/// checked by the TSan leg in tools/ci.sh, not by this gate.
struct ThreadAgreement {
  int n_ues = 0;
  unsigned threads = 4;
  bool fingerprint_match = false;
  bool metrics_match = false;
  std::uint64_t fingerprint_serial = 0;
  std::uint64_t fingerprint_parallel = 0;
  bool pass = false;
};

ThreadAgreement run_thread_agreement(int n_ues) {
  ThreadAgreement t;
  t.n_ues = n_ues;
  auto run_with = [&](int threads, std::string& metrics_json) {
    obs::Registry reg;
    obs::ScopedRegistry scope(&reg);
    const ScaleTrafficResult r = run_scale_traffic(curve_config(n_ues, threads));
    metrics_json = reg.to_json();
    return r.fingerprint();
  };
  std::string json_serial, json_parallel;
  t.fingerprint_serial = run_with(1, json_serial);
  t.fingerprint_parallel = run_with(static_cast<int>(t.threads), json_parallel);
  t.fingerprint_match = t.fingerprint_serial == t.fingerprint_parallel;
  t.metrics_match = json_serial == json_parallel;
  t.pass = t.fingerprint_match && t.metrics_match;
  return t;
}

/// The CI hard gate: the PacketVsFluidAgreementSmallN tolerance, rerun as a
/// bench so the committed BENCH_scale.json carries the numbers. Runs in the
/// shaper-dominated regime (see EXPERIMENTS.md "scale curve") where the
/// fluid steady-state assumption holds; byte totals must match exactly in
/// every regime.
Agreement run_agreement_gate() {
  ScaleTrafficConfig cfg;
  cfg.n_ues = 24;
  cfg.n_cells = 2;
  cfg.seed = 3;
  cfg.mean_flow_mbytes = 2.0;
  cfg.start_window_s = 2.0;
  cfg.horizon_s = 600.0;
  cfg.scheduler_capacity_bps = 400e6;  // shaper caps are the bottleneck

  cfg.mode = TrafficMode::Fluid;
  const ScaleTrafficResult fluid = run_scale_traffic(cfg);
  cfg.mode = TrafficMode::Packet;
  const ScaleTrafficResult packet = run_scale_traffic(cfg);

  Agreement a;
  a.n_ues = cfg.n_ues;
  auto exact = [](double x, double y) {
    return std::abs(x - y) <= 1e-9 * std::max({1.0, std::abs(x), std::abs(y)});
  };
  a.bytes_exact = fluid.completed == cfg.n_ues && packet.completed == cfg.n_ues &&
                  exact(fluid.delivered_bytes, packet.delivered_bytes);
  a.billing_exact = exact(fluid.billing_usd, packet.billing_usd);
  a.fluid_mean_s = fluid.completion_mean_s;
  a.packet_mean_s = packet.completion_mean_s;
  a.fluid_p99_s = fluid.completion_p99_s;
  a.packet_p99_s = packet.completion_p99_s;
  a.mean_err = std::abs(a.fluid_mean_s - a.packet_mean_s) / a.packet_mean_s;
  a.p99_err = std::abs(a.fluid_p99_s - a.packet_p99_s) / a.packet_p99_s;
  a.pass = a.bytes_exact && a.billing_exact && a.mean_err <= 0.15 && a.p99_err <= 0.25;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool fluid_axis = false;
  bool metrics_enabled = true;
  int fluid_threads = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--fluid") == 0) fluid_axis = true;
    else if (std::strcmp(argv[i], "--fluid-threads") == 0 && i + 1 < argc)
      fluid_threads = std::max(std::atoi(argv[++i]), 1);
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    else if (std::strcmp(argv[i], "--no-metrics") == 0) metrics_enabled = false;
  }

  // Root registry for the whole bench: TrialRunner gives each sweep point a
  // private per-trial registry and merges them back here in index order, so
  // the snapshot below is byte-identical across same-seed runs regardless of
  // thread count or completion order.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(metrics_enabled ? &metrics : nullptr);

  const std::vector<int> storm_sizes = smoke ? std::vector<int>{1, 10}
                                             : std::vector<int>{1, 10, 50, 100, 200};
  const std::vector<double> losses = smoke ? std::vector<double>{0.0, 0.05}
                                           : std::vector<double>{0.0, 0.01, 0.05, 0.10};
  const int loss_ues = smoke ? 10 : 50;
  // The full curve ends at 1M UEs — the ROADMAP scale target. Release-only
  // in CI (scale ctest label covers the test-suite variant); the smoke set
  // stays small enough for the sanitizer legs.
  const std::vector<int> curve_sizes =
      smoke ? std::vector<int>{1000, 10000}
            : std::vector<int>{1000, 10000, 100000, 1000000};

  std::vector<StormPoint> points;
  for (int n : storm_sizes) {
    for (Architecture arch : {Architecture::Mno, Architecture::CellBricks}) {
      points.push_back({n, arch, 0.0, {}});
    }
  }
  std::vector<StormPoint> loss_points;
  for (double loss : losses) {
    loss_points.push_back({loss_ues, Architecture::CellBricks, loss, {}});
  }

  ThreadUse threads_used;
  const auto wall_start = std::chrono::steady_clock::now();
  TrialRunner runner;
  {
    auto timed_storm = [&](const StormPoint& p) {
      threads_used.note();
      const double t0 = now_s();
      StormPoint out = p;
      out.result = run_attach_storm(p.arch, p.n_ues, Duration::millis(7.2), p.loss);
      out.wall_s = now_s() - t0;
      return out;
    };
    auto storm = runner.map(points.size(), [&](std::size_t i) { return timed_storm(points[i]); });
    for (std::size_t i = 0; i < points.size(); ++i) points[i] = storm[i];

    auto swept =
        runner.map(loss_points.size(), [&](std::size_t i) { return timed_storm(loss_points[i]); });
    for (std::size_t i = 0; i < loss_points.size(); ++i) loss_points[i] = swept[i];
  }

  // The storm wall-clock is the number tracked against the frozen pre-PR3
  // baseline in BENCH_scale.json — keep it storm-only so the speedup stays
  // comparable; the fluid axis gets its own timer.
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  // Fluid scale curve + agreement gates — sequential on purpose (see header).
  std::vector<FluidPoint> curve;
  Agreement agreement;
  ThreadAgreement thread_agreement;
  bool rss_reset_ok = true;
  const auto fluid_start = std::chrono::steady_clock::now();
  if (fluid_axis) {
    for (int n : curve_sizes) {
      FluidPoint p;
      p.n_ues = n;
      const double rss_before = peak_rss_mb();
      const bool did_reset = reset_peak_rss();
      rss_reset_ok = rss_reset_ok && did_reset;
      const double t0 = now_s();
      p.result = run_scale_traffic(curve_config(n, fluid_threads));
      p.wall_s = now_s() - t0;
      // Post-reset VmHWM is this point's own peak; without clear_refs fall
      // back to the watermark delta (a floor of the true per-point peak).
      p.peak_rss_mb = did_reset ? peak_rss_mb() : std::max(peak_rss_mb() - rss_before, 0.0);
      curve.push_back(p);
    }
    agreement = run_agreement_gate();
    thread_agreement = run_thread_agreement(smoke ? 1000 : 10000);
  }
  const double fluid_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - fluid_start).count();

  std::printf("=== Scale: N simultaneous attach requests (one cell, brokerd at "
              "us-west RTT) ===\n\n");
  std::printf("%6s %-4s %12s %12s %10s\n", "N UEs", "arch", "mean(ms)", "p99(ms)",
              "completed");
  for (const StormPoint& p : points) {
    std::printf("%6d %-4s %12.2f %12.2f %6d/%d\n", p.n_ues, arch_name(p.arch),
                p.result.mean_ms, p.result.p99_ms, p.result.completed, p.n_ues);
  }
  std::printf("\n(Queueing at the serial control-plane services dominates at high N;\n"
              " CB queues once at brokerd, BL queues twice at the HSS.)\n");

  std::printf("\n=== Degraded control path: %d UEs, loss on the tower<->cloud link "
              "(CellBricks, SAP retransmission active) ===\n\n", loss_ues);
  std::printf("%8s %12s %12s %10s\n", "loss", "mean(ms)", "p99(ms)", "completed");
  for (const StormPoint& p : loss_points) {
    std::printf("%7.0f%% %12.2f %12.2f %7d/%d\n", p.loss * 100, p.result.mean_ms,
                p.result.p99_ms, p.result.completed, p.n_ues);
  }
  std::printf("\n(Lost SAP datagrams are recovered by the bTelco's 1 s retransmission;\n"
              " completion stays high while tail latency grows with loss.)\n");

  if (fluid_axis) {
    std::printf("\n=== Fluid scale curve: N bulk downloads, hybrid engine in fluid mode "
                "(5 MB mean flows, Appendix-A night shaper) ===\n\n");
    std::printf("%8s %10s %10s %12s %12s %12s %10s\n", "N UEs", "wall(s)", "sim(s)",
                "sim-s/wall-s", "events/UE", "peakRSS(MB)", "completed");
    for (const FluidPoint& p : curve) {
      std::printf("%8d %10.3f %10.1f %12.1f %12.1f %12.1f %6d/%d\n", p.n_ues, p.wall_s,
                  p.result.sim_s, p.result.sim_s / std::max(p.wall_s, 1e-9),
                  static_cast<double>(p.result.events) / p.n_ues, p.peak_rss_mb,
                  p.result.completed, p.n_ues);
    }
    std::printf("\n(Events scale with rate changes, not packets: the arena keeps\n"
                " per-session state at %zu B so 1M sessions stay in ~74 MB.\n"
                " peakRSS is per-point%s; fluid drain threads: %d.)\n",
                traffic::SessionArena::bytes_per_session(),
                rss_reset_ok ? " (VmHWM reset between points)"
                             : " (watermark delta — clear_refs unavailable)",
                fluid_threads);

    std::printf("\n=== Parallel-drain determinism gate (%d UEs, 1 vs %u fluid threads) ===\n\n",
                thread_agreement.n_ues, thread_agreement.threads);
    std::printf("  fingerprint:      %016llx vs %016llx -> %s\n",
                static_cast<unsigned long long>(thread_agreement.fingerprint_serial),
                static_cast<unsigned long long>(thread_agreement.fingerprint_parallel),
                thread_agreement.fingerprint_match ? "identical" : "DIVERGED");
    std::printf("  metrics snapshot: %s\n",
                thread_agreement.metrics_match ? "byte-identical" : "DIVERGED");
    std::printf("  => %s\n", thread_agreement.pass ? "PASS" : "FAIL");

    std::printf("\n=== Packet-vs-fluid agreement gate (%d UEs, shaper-dominated) ===\n\n",
                agreement.n_ues);
    std::printf("  delivered bytes exact: %s\n", agreement.bytes_exact ? "yes" : "NO");
    std::printf("  billing exact:         %s\n", agreement.billing_exact ? "yes" : "NO");
    std::printf("  completion mean:  fluid %.3f s vs packet %.3f s (%.1f%%, budget 15%%)\n",
                agreement.fluid_mean_s, agreement.packet_mean_s, agreement.mean_err * 100);
    std::printf("  completion p99:   fluid %.3f s vs packet %.3f s (%.1f%%, budget 25%%)\n",
                agreement.fluid_p99_s, agreement.packet_p99_s, agreement.p99_err * 100);
    std::printf("  => %s\n", agreement.pass ? "PASS" : "FAIL");
  }

  std::printf("\nwall-clock: %.3f s storms on %u threads (%u-thread pool)%s\n", wall_s,
              threads_used.count(), runner.thread_count(), smoke ? " (smoke mode)" : "");
  if (fluid_axis) std::printf("wall-clock: %.3f s fluid curve + agreement gate\n", fluid_wall_s);
  if (metrics_enabled) std::printf("%s\n", metrics.digest().c_str());

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"scale_users\",\n  \"mode\": \"%s\",\n"
                 "  \"wall_s\": %.3f,\n  \"threads\": %u,\n  \"thread_pool\": %u,\n"
                 "  \"points\": [\n",
                 smoke ? "smoke" : "full", wall_s, threads_used.count(),
                 runner.thread_count());
    bool first = true;
    auto emit = [&](const StormPoint& p) {
      std::fprintf(f,
                   "%s    {\"n_ues\": %d, \"arch\": \"%s\", \"loss\": %.2f, "
                   "\"mean_ms\": %.2f, \"p99_ms\": %.2f, \"completed\": %d, "
                   "\"wall_s\": %.4f, \"sim_s\": %.4f, \"sim_per_wall\": %.1f}",
                   first ? "" : ",\n", p.n_ues, arch_name(p.arch), p.loss,
                   p.result.mean_ms, p.result.p99_ms, p.result.completed, p.wall_s,
                   p.result.sim_s, p.result.sim_s / std::max(p.wall_s, 1e-9));
      first = false;
    };
    for (const StormPoint& p : points) emit(p);
    for (const StormPoint& p : loss_points) emit(p);
    std::fprintf(f, "\n  ]");
    if (fluid_axis) {
      std::fprintf(f, ",\n  \"fluid_wall_s\": %.3f,\n  \"scale_curve\": [\n", fluid_wall_s);
      first = true;
      for (const FluidPoint& p : curve) {
        std::fprintf(f,
                     "%s    {\"n_ues\": %d, \"completed\": %d, \"wall_s\": %.3f, "
                     "\"sim_s\": %.1f, \"sim_per_wall\": %.1f, \"events\": %llu, "
                     "\"rate_events\": %llu, \"peak_rss_mb\": %.1f, "
                     "\"arena_mb\": %.2f, \"total_gbytes\": %.2f}",
                     first ? "" : ",\n", p.n_ues, p.result.completed, p.wall_s,
                     p.result.sim_s, p.result.sim_s / std::max(p.wall_s, 1e-9),
                     static_cast<unsigned long long>(p.result.events),
                     static_cast<unsigned long long>(p.result.rate_events), p.peak_rss_mb,
                     p.result.arena_bytes / (1024.0 * 1024.0), p.result.total_gbytes);
        first = false;
      }
      std::fprintf(f,
                   "\n  ],\n  \"fluid_threads\": %d,\n  \"rss_mode\": \"%s\",\n"
                   "  \"agreement\": {\"n_ues\": %d, \"pass\": %s, "
                   "\"bytes_exact\": %s, \"billing_exact\": %s, "
                   "\"mean_err_pct\": %.2f, \"p99_err_pct\": %.2f, "
                   "\"mean_budget_pct\": 15.0, \"p99_budget_pct\": 25.0},\n"
                   "  \"thread_agreement\": {\"n_ues\": %d, \"threads\": %u, "
                   "\"pass\": %s, \"fingerprint_match\": %s, \"metrics_match\": %s, "
                   "\"fingerprint\": \"%016llx\"}",
                   fluid_threads, rss_reset_ok ? "reset" : "delta",
                   agreement.n_ues, agreement.pass ? "true" : "false",
                   agreement.bytes_exact ? "true" : "false",
                   agreement.billing_exact ? "true" : "false", agreement.mean_err * 100,
                   agreement.p99_err * 100, thread_agreement.n_ues,
                   thread_agreement.threads, thread_agreement.pass ? "true" : "false",
                   thread_agreement.fingerprint_match ? "true" : "false",
                   thread_agreement.metrics_match ? "true" : "false",
                   static_cast<unsigned long long>(thread_agreement.fingerprint_serial));
    }
    std::fprintf(f, ",\n  \"metrics_enabled\": %s",
                 metrics_enabled ? "true" : "false");
    if (metrics_enabled) {
      std::fprintf(f, ",\n  \"metrics\": %s", metrics.to_json().c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
  }

  if (fluid_axis && !agreement.pass) {
    std::fprintf(stderr, "FAIL: packet-vs-fluid agreement outside tolerance\n");
    return 1;
  }
  if (fluid_axis && !thread_agreement.pass) {
    std::fprintf(stderr, "FAIL: parallel drain diverged from serial engine\n");
    return 1;
  }
  return 0;
}
