// Fig.9 — Impact of attachment latency on post-handover throughput.
//
// CellBricks runs with the MPTCP 500 ms address_worker wait removed and
// attachment latency d in {32, 64, 128} ms (realized by moving brokerd so
// the SAP round-trip produces that d), plus the unmodified 500 ms variant.
// For each window of n seconds after a handover, throughput is normalized
// to the TCP/MNO baseline of the same geometry — the paper's finding: lower
// d recovers faster, and without the wait CellBricks routinely OVERSHOOTS
// TCP (>100%) in the first seconds after handover thanks to slow-start.
//
// The protocol axis rides the same harness: sap_resume re-runs the d=32 ms
// geometry with broker-minted resumption tickets, where the re-attach skips
// the broker round-trip entirely — the per-protocol recovery curves are the
// JSON that tools/bench.sh schema-checks.
//
// Usage: bench_fig9_attach_latency_sweep [--smoke] [--json FILE]
//   --smoke  120 s drive instead of 300 s and only the d=32 ms sweep point
//            (schema validation; smoke numbers are not representative)
//   --json   write per-protocol recovery windows to FILE
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "apps/iperf.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

constexpr int kWindows = 9;

struct Run {
  std::vector<double> bytes_100ms;  // 100 ms buckets
  std::vector<double> handovers_s;
};

Run run(AttachProtocol protocol, Duration cloud_rtt, Duration wait, std::uint64_t seed,
        double drive_s) {
  WorldConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = seed;
  cfg.n_towers = 10;
  // Night policy: "We measure performance at night so that performance is
  // less constrained by T-Mobile's rate limits."
  cfg.route = RouteSpec{"fig9", true, 25.0, 900.0, ran::RatePolicy::night()};
  cfg.cloud_rtt = cloud_rtt;
  cfg.mptcp_address_wait = wait;
  World world(cfg);

  Run out;
  world.on_cell_change = [&](ran::CellId from, ran::CellId) {
    if (from != 0) out.handovers_s.push_back(world.simulator().now().to_seconds());
  };
  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(400));
  world.start();
  world.simulator().run_for(Duration::s(5));
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator(), Duration::ms(100));
  world.simulator().run_for(Duration::seconds(drive_s));

  for (std::size_t i = 0; i < client.series().buckets(); ++i) {
    out.bytes_100ms.push_back(client.series().bucket(i));
  }
  return out;
}

// Mean throughput (bytes/s) in [h, h+n) seconds.
double window_rate(const Run& r, double h, int n) {
  const std::size_t from = static_cast<std::size_t>(h * 10.0);
  const std::size_t to = from + static_cast<std::size_t>(n) * 10;
  double sum = 0;
  for (std::size_t i = from; i < to && i < r.bytes_100ms.size(); ++i) sum += r.bytes_100ms[i];
  return sum / n;
}

// Post-handover throughput in the n-second windows, normalized to the
// TCP/MNO baseline over the same windows (percent; mean over handovers).
std::vector<double> rel_windows(const Run& cb, const Run& baseline, double base_mean) {
  std::vector<double> out;
  for (int n = 1; n <= kWindows; ++n) {
    double rel_sum = 0;
    int count = 0;
    for (double h : cb.handovers_s) {
      const double base = window_rate(baseline, h, n);
      const double mine = window_rate(cb, h, n);
      if (base > 0.2 * base_mean) {  // skip degenerate baseline windows
        rel_sum += mine / base * 100.0;
        ++count;
      }
    }
    out.push_back(count ? rel_sum / count : 0.0);
  }
  return out;
}

void print_row(const char* name, const std::vector<double>& windows, std::size_t handovers) {
  std::printf("%-20s", name);
  for (double w : windows) std::printf(" %5.0f", w);
  std::printf("   (%% of TCP, %zu handovers)\n", handovers);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fig9_attach_latency_sweep [--smoke] [--json FILE]\n");
      return 2;
    }
  }
  const double drive_s = smoke ? 120.0 : 300.0;

  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  std::printf("=== Fig.9: relative post-handover throughput vs attachment latency ===\n");
  std::printf("(CB throughput in the n seconds after each handover, normalized to the\n"
              " TCP/MNO baseline over the same windows; night policy; mean over handovers)\n\n");

  struct Config {
    const char* name;
    Duration cloud_rtt;
    Duration wait;
  };
  // cloud_rtt chosen so d = 24.5 ms processing + RTT hits the target.
  const Config configs[] = {
      {"mod. 32ms", Duration::millis(7.5), Duration::zero()},
      {"mod. 64ms", Duration::millis(39.5), Duration::zero()},
      {"mod. 128ms", Duration::millis(103.5), Duration::zero()},
      {"unmod.(500ms wait)", Duration::millis(7.5), Duration::ms(500)},
  };
  const std::size_t n_configs = smoke ? 1 : std::size(configs);

  const Run baseline = run(AttachProtocol::EpsAka, Duration::millis(7.5), Duration::zero(), 9,
                           drive_s);
  // Overall baseline rate, for excluding degenerate windows (the MNO
  // baseline has its own brief handover dips; normalizing by a near-zero
  // window would explode the ratio — the paper's real-network baseline did
  // not stall at the emulated UE's handover instants).
  double base_total = 0;
  for (double v : baseline.bytes_100ms) base_total += v;
  const double base_mean =
      base_total / (static_cast<double>(baseline.bytes_100ms.size()) / 10.0);

  std::printf("%-20s", "elapsed since HO:");
  for (int n = 1; n <= kWindows; ++n) std::printf("   %2ds", n);
  std::printf("\n");

  std::vector<double> sap32;  // the d=32 ms sap curve, reused for the JSON
  std::size_t sap32_handovers = 0;
  for (std::size_t i = 0; i < n_configs; ++i) {
    const Config& c = configs[i];
    const Run cb = run(AttachProtocol::Sap, c.cloud_rtt, c.wait, 9, drive_s);
    const std::vector<double> windows = rel_windows(cb, baseline, base_mean);
    print_row(c.name, windows, cb.handovers_s.size());
    if (i == 0) {
      sap32 = windows;
      sap32_handovers = cb.handovers_s.size();
    }
  }

  // Per-protocol axis: the same d=32 ms geometry with resumption tickets.
  const Run resume32 = run(AttachProtocol::SapResume, configs[0].cloud_rtt, configs[0].wait, 9,
                           drive_s);
  const std::vector<double> resume_windows = rel_windows(resume32, baseline, base_mean);
  print_row("resume 32ms", resume_windows, resume32.handovers_s.size());

  std::printf("\nShape check (paper Fig.9): lower d => faster recovery; modified variants\n"
              "reach/exceed 100%% within a few seconds (slow-start overshoot: 10-30%% above\n"
              "TCP right after handover); the unmodified 500 ms wait lags behind early on;\n"
              "resume 32ms removes the broker leg from the re-attach and recovers fastest.\n");

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror("bench_fig9_attach_latency_sweep: --json open");
      return 2;
    }
    auto emit_windows = [f](const std::vector<double>& w) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        std::fprintf(f, "%s%.2f", i == 0 ? "" : ", ", w[i]);
      }
    };
    std::fprintf(f, "{\n  \"bench\": \"fig9_sweep\",\n  \"mode\": \"%s\",\n"
                    "  \"protocols\": {\n",
                 smoke ? "smoke" : "full");
    std::fprintf(f, "    \"sap\": {\"windows_pct\": [");
    emit_windows(sap32);
    std::fprintf(f, "], \"handovers\": %zu},\n", sap32_handovers);
    std::fprintf(f, "    \"sap_resume\": {\"windows_pct\": [");
    emit_windows(resume_windows);
    std::fprintf(f, "], \"handovers\": %zu}\n  }\n}\n", resume32.handovers_s.size());
    std::fclose(f);
  }

  std::printf("\n%s\n", metrics.digest().c_str());
  return 0;
}
