// Chaos availability — drives a mobile UE (suburb route) through a scripted
// fault schedule and reports what the recovery machinery delivers:
// availability during/after faults, the re-attach latency distribution, and
// billing-pair completion. The scenario runs twice on the same seed and
// fails if the state fingerprints differ: fault injection must be
// bit-reproducible for regression hunting. A second replica pair repeats the
// gate with the noisy measurement channel (shadowing + fast fading + L3
// filter) enabled, pinning the channel's hash-not-RNG determinism contract.
//
// `--dump-faults F` writes the schedule as JSON; `--replay F` substitutes a
// schedule from such a file — or from a cbfuzz repro document, whose
// scenario.faults array uses the same encoding — for the built-in one.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/json.hpp"
#include "obs/metrics.hpp"
#include "scenario/chaos.hpp"
#include "scenario/trial_runner.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

check::JsonValue faults_to_json(const ChaosConfig& cfg) {
  check::JsonArray faults;
  for (const auto& f : cfg.broker_outages) {
    check::JsonObject jf;
    jf["kind"] = "broker_outage";
    jf["start_s"] = f.start.to_seconds();
    jf["duration_s"] = f.duration.to_seconds();
    faults.emplace_back(std::move(jf));
  }
  for (const auto& f : cfg.telco_crashes) {
    check::JsonObject jf;
    jf["kind"] = "telco_crash";
    jf["start_s"] = f.start.to_seconds();
    jf["duration_s"] = f.duration.to_seconds();
    jf["telco"] = static_cast<std::uint64_t>(f.telco);
    faults.emplace_back(std::move(jf));
  }
  for (const auto& f : cfg.radio_drops) {
    check::JsonObject jf;
    jf["kind"] = "radio_drop";
    jf["start_s"] = f.at.to_seconds();
    faults.emplace_back(std::move(jf));
  }
  for (const auto& f : cfg.wan_degrades) {
    check::JsonObject jf;
    jf["kind"] = "wan_degrade";
    jf["start_s"] = f.start.to_seconds();
    jf["duration_s"] = f.duration.to_seconds();
    jf["loss"] = f.loss;
    jf["corrupt"] = f.corrupt;
    faults.emplace_back(std::move(jf));
  }
  check::JsonObject doc;
  doc["format"] = "chaos-faults-v1";
  doc["faults"] = check::JsonValue(std::move(faults));
  return check::JsonValue(std::move(doc));
}

/// Replace cfg's schedule with the `faults` array of a dump or repro file.
void apply_faults(ChaosConfig& cfg, const check::JsonValue& doc) {
  const check::JsonValue& root = doc.contains("scenario") ? doc.at("scenario") : doc;
  cfg.broker_outages.clear();
  cfg.telco_crashes.clear();
  cfg.radio_drops.clear();
  cfg.wan_degrades.clear();
  double last_end_s = 0.0;
  for (const auto& jf : root.at("faults").as_array()) {
    const std::string kind = jf.at("kind").as_string();
    const TimePoint start = TimePoint::zero() + Duration::seconds(jf.at("start_s").as_double());
    const Duration dur =
        Duration::seconds(jf.get("duration_s", check::JsonValue(0.0)).as_double());
    if (kind == "broker_outage") {
      cfg.broker_outages.push_back({.start = start, .duration = dur});
    } else if (kind == "telco_crash") {
      cfg.telco_crashes.push_back({.telco = jf.get("telco", check::JsonValue(0)).as_uint(),
                                   .start = start,
                                   .duration = dur});
    } else if (kind == "radio_drop") {
      cfg.radio_drops.push_back({.at = start});
    } else if (kind == "wan_degrade") {
      cfg.wan_degrades.push_back({.start = start,
                                  .duration = dur,
                                  .loss = jf.get("loss", check::JsonValue(0.0)).as_double(),
                                  .corrupt = jf.get("corrupt", check::JsonValue(0.0)).as_double()});
    } else {
      throw std::runtime_error("unknown fault kind '" + kind + "'");
    }
    last_end_s = std::max(last_end_s, (start + dur).to_seconds());
  }
  // Keep enough horizon past the last fault for the recovery machinery
  // (and the availability-after-faults window) to mean something.
  const double needed = last_end_s + 60.0;
  if (cfg.duration.to_seconds() < needed) cfg.duration = Duration::seconds(needed);
}

ChaosConfig make_config() {
  ChaosConfig cfg;
  cfg.world.seed = 42;
  cfg.world.route = suburb_day();
  cfg.world.n_towers = 8;
  cfg.duration = Duration::s(240);
  // Tighten recovery clocks so every mechanism resolves within the run.
  cfg.world.btelco_config.session_timeout = Duration::s(30);
  cfg.world.btelco_config.gc_interval = Duration::s(5);
  cfg.world.ue_config.attach_timeout = Duration::s(2);

  // The UE serves from cell 1 (btelco-0) until ~73 s, then cell 2, ...
  cfg.telco_crashes.push_back(
      {.telco = 0, .start = TimePoint::zero() + Duration::s(30), .duration = Duration::s(20)});
  cfg.broker_outages.push_back(
      {.start = TimePoint::zero() + Duration::s(70), .duration = Duration::s(15)});
  cfg.radio_drops.push_back({.at = TimePoint::zero() + Duration::s(120)});
  cfg.wan_degrades.push_back({.start = TimePoint::zero() + Duration::s(150),
                              .duration = Duration::s(30),
                              .loss = 0.25,
                              .corrupt = 0.10});
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string replay_path;
  std::string dump_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) replay_path = argv[++i];
    else if (std::strcmp(argv[i], "--dump-faults") == 0 && i + 1 < argc) dump_path = argv[++i];
  }

  ChaosConfig cfg = make_config();
  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replay_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      apply_faults(cfg, check::json_parse(text.str()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad fault log %s: %s\n", replay_path.c_str(), e.what());
      return 1;
    }
    std::printf("replaying fault schedule from %s\n", replay_path.c_str());
  }
  if (!dump_path.empty()) {
    std::ofstream out(dump_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", dump_path.c_str());
      return 1;
    }
    out << faults_to_json(cfg).dump(2) << "\n";
    std::printf("fault schedule written to %s\n", dump_path.c_str());
  }

  std::printf("=== Chaos availability: scripted faults vs recovery machinery ===\n\n");
  // The two same-seed replicas are independent simulators, so they run
  // concurrently on the trial pool; the determinism check compares them.
  TrialRunner runner;
  const auto replicas = runner.map(2, [&cfg](std::size_t) { return run_chaos(cfg); });
  const ChaosResult& r1 = replicas[0];
  const ChaosResult& r2 = replicas[1];

  std::printf("fault schedule (as executed):\n");
  for (const auto& e : r1.fault_log) {
    std::printf("  %7.1f s  %s\n", e.at.to_seconds(), e.what.c_str());
  }

  std::printf("\n%-34s %12s\n", "metric", "value");
  std::printf("%-34s %11.1f%%\n", "availability (whole run)", 100.0 * r1.availability);
  std::printf("%-34s %11.1f%%\n", "availability (after faults clear)",
              100.0 * r1.availability_after_faults);
  const Summary& lat = r1.reattach_latency_ms;
  std::printf("%-34s %12zu\n", "recoveries", static_cast<std::size_t>(lat.count()));
  if (lat.count() > 0) {
    std::printf("%-34s %9.0f ms\n", "re-attach latency (mean)", lat.mean());
    std::printf("%-34s %9.0f ms\n", "re-attach latency (max)", lat.max());
  }
  std::printf("%-34s %12llu\n", "bearer losses detected",
              static_cast<unsigned long long>(r1.bearer_losses));
  std::printf("%-34s %12llu\n", "attach failures",
              static_cast<unsigned long long>(r1.attach_failures));
  std::printf("%-34s %12llu\n", "sessions GCed (orphans reclaimed)",
              static_cast<unsigned long long>(r1.sessions_gced));
  std::printf("%-34s %12zu\n", "orphan sessions at end", r1.orphan_sessions);
  std::printf("%-34s %12s\n", "UE attached at end", r1.ue_attached_at_end ? "yes" : "no");
  std::printf("%-34s %12llu\n", "reports ingested",
              static_cast<unsigned long long>(r1.reports_ingested));
  std::printf("%-34s %12llu\n", "duplicate reports filtered",
              static_cast<unsigned long long>(r1.reports_deduped));
  std::printf("%-34s %12llu\n", "unpaired reports expired",
              static_cast<unsigned long long>(r1.unpaired_expired));
  std::printf("%-34s %12llu\n", "reports abandoned",
              static_cast<unsigned long long>(r1.reports_abandoned));
  std::printf("%-34s %12llu\n", "report pairs compared",
              static_cast<unsigned long long>(r1.pairs_compared));
  std::printf("%-34s %11.1f%%\n", "billing-pair completion", 100.0 * r1.pair_completion);
  std::printf("%-34s %#12llx\n", "state fingerprint",
              static_cast<unsigned long long>(r1.fingerprint));
  std::printf("%-34s %#12llx\n", "trace fingerprint",
              static_cast<unsigned long long>(r1.trace_fingerprint));

  bool ok = true;
  if (r1.fingerprint != r2.fingerprint) {
    std::printf("\nFAIL: same-seed runs diverged (%#llx vs %#llx)\n",
                static_cast<unsigned long long>(r1.fingerprint),
                static_cast<unsigned long long>(r2.fingerprint));
    ok = false;
  }
  // The obs layer must be as deterministic as the engine: both replicas'
  // metric snapshots must match byte for byte, traces bit for bit.
  if (r1.metrics_json != r2.metrics_json || r1.trace_fingerprint != r2.trace_fingerprint) {
    std::printf("\nFAIL: same-seed runs produced different metrics snapshots\n");
    ok = false;
  }
  if (r1.availability_after_faults < 0.95) {
    std::printf("\nFAIL: UE did not stay attached once faults cleared (%.1f%%)\n",
                100.0 * r1.availability_after_faults);
    ok = false;
  }
  if (r1.orphan_sessions != 0) {
    std::printf("\nFAIL: %zu orphaned sessions never GCed\n", r1.orphan_sessions);
    ok = false;
  }
  // Same gate with the measurement channel fully noisy: shadowing + fast
  // fading + the L3 filter must not cost bit-reproducibility (the channel is
  // a pure hash of (seed, UE, cell, position, tick), not an RNG stream).
  ChaosConfig fading_cfg = cfg;
  fading_cfg.world.radio_config.channel.shadow_sigma_db = 4.0;
  fading_cfg.world.radio_config.channel.decorrelation_m = 60.0;
  fading_cfg.world.radio_config.channel.fast_fading = true;
  fading_cfg.world.radio_config.l3_filter_k = 4;
  const auto fading = runner.map(2, [&fading_cfg](std::size_t) { return run_chaos(fading_cfg); });
  const bool fading_ok = fading[0].fingerprint == fading[1].fingerprint &&
                         fading[0].metrics_json == fading[1].metrics_json &&
                         fading[0].trace_fingerprint == fading[1].trace_fingerprint;
  std::printf("\nfading replica pair (shadowing 4 dB + fast fading): %s (fp %#llx)\n",
              fading_ok ? "bit-identical" : "DIVERGED",
              static_cast<unsigned long long>(fading[0].fingerprint));
  if (!fading_ok) {
    std::printf("FAIL: fading-enabled same-seed runs diverged\n");
    ok = false;
  }

  if (ok) std::printf("\ndeterminism + recovery checks passed\n");

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"chaos_availability\",\n"
                 "  \"availability\": %.6f,\n"
                 "  \"availability_after_faults\": %.6f,\n"
                 "  \"fingerprint\": \"%#llx\",\n"
                 "  \"trace_fingerprint\": \"%#llx\",\n"
                 "  \"deterministic\": %s,\n"
                 "  \"fading_deterministic\": %s,\n"
                 "  \"metrics\": %s\n}\n",
                 r1.availability, r1.availability_after_faults,
                 static_cast<unsigned long long>(r1.fingerprint),
                 static_cast<unsigned long long>(r1.trace_fingerprint), ok ? "true" : "false",
                 fading_ok ? "true" : "false", r1.metrics_json.c_str());
    std::fclose(f);
  }
  return ok ? 0 : 1;
}
