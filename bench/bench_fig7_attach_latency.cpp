// Fig.7 — Attachment latency breakdown by module, Magma baseline (BL) vs
// CellBricks (CB), with the SubscriberDB/Brokerd placed locally, in
// "us-west-1", or "us-east-1".
//
// Reproduces: BL pays two round-trips to the SubscriberDB (AIR + ULR); CB
// pays one round-trip to brokerd plus ~2 ms of crypto. CB therefore loses
// slightly when the DB is local and wins increasingly as it moves away
// (paper: -14.0% at us-west-1, -40.8% at us-east-1).
#include <cstdio>

#include "obs/metrics.hpp"
#include "scenario/attach_experiment.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct PaperRef {
  const char* placement;
  double bl_total;
  double cb_total;
};

// Fig.7 as printed in the paper (local read off the bars; WAN given in text).
constexpr PaperRef kPaper[] = {
    {"local", 28.0, 28.5},
    {"us-west-1", 36.85, 31.68},
    {"us-east-1", 166.48, 98.62},
};

}  // namespace

int main() {
  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  std::printf("=== Fig.7: attachment latency breakdown (BL = Magma/EPC baseline, "
              "CB = CellBricks/SAP) ===\n");
  std::printf("100 attach requests per cell; radio/RRC time excluded, as in the paper.\n\n");
  std::printf("%-11s %-4s %10s %12s %8s %8s %8s   %s\n", "placement", "arch", "total(ms)",
              "agw+core", "eNB", "UE", "other", "paper-total(ms)");

  const auto placements = attach_placements();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto& p = placements[i];
    double totals[2] = {0, 0};
    for (Architecture arch : {Architecture::Mno, Architecture::CellBricks}) {
      const AttachBreakdown b = run_attach_experiment(arch, p.cloud_rtt, 100);
      const bool cb = arch == Architecture::CellBricks;
      totals[cb ? 1 : 0] = b.total_ms;
      std::printf("%-11s %-4s %10.2f %12.2f %8.2f %8.2f %8.2f   %.2f\n", p.name.c_str(),
                  cb ? "CB" : "BL", b.total_ms, b.agw_core_ms, b.enb_ms, b.ue_ms, b.other_ms,
                  cb ? kPaper[i].cb_total : kPaper[i].bl_total);
    }
    if (totals[0] > 0) {
      std::printf("  -> CB vs BL: %+.1f%%  (paper: %+.1f%%)\n\n",
                  (totals[1] / totals[0] - 1.0) * 100.0,
                  (kPaper[i].cb_total / kPaper[i].bl_total - 1.0) * 100.0);
    }
  }
  std::printf("Shape check: CB ~equal locally, faster with remote DB because SAP needs one\n"
              "broker round-trip where the S6A baseline needs two (AIR + ULR).\n");
  std::printf("\n%s\n", metrics.digest().c_str());
  return 0;
}
