// Fig.7 — Attachment latency breakdown by module, Magma baseline (BL) vs
// CellBricks (CB), with the SubscriberDB/Brokerd placed locally, in
// "us-west-1", or "us-east-1".
//
// Reproduces: BL pays two round-trips to the SubscriberDB (AIR + ULR); CB
// pays one round-trip to brokerd plus ~2 ms of crypto. CB therefore loses
// slightly when the DB is local and wins increasingly as it moves away
// (paper: -14.0% at us-west-1, -40.8% at us-east-1).
//
// The protocol sweep below runs the same cycle under every attach protocol
// (eps_aka | 5g_aka | sap | sap_resume) per placement — the per-protocol
// attach-latency baseline that tools/bench.sh freezes into BENCH_sap.json.
//
// Usage: bench_fig7_attach_latency [--smoke] [--json FILE]
//   --smoke  8 attach cycles per cell instead of 100 (schema validation
//            only; smoke numbers are not representative)
//   --json   write the per-protocol sweep as machine-readable JSON to FILE
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "scenario/attach_experiment.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct PaperRef {
  const char* placement;
  double bl_total;
  double cb_total;
};

// Fig.7 as printed in the paper (local read off the bars; WAN given in text).
constexpr PaperRef kPaper[] = {
    {"local", 28.0, 28.5},
    {"us-west-1", 36.85, 31.68},
    {"us-east-1", 166.48, 98.62},
};

constexpr AttachProtocol kProtocols[] = {AttachProtocol::EpsAka, AttachProtocol::Aka5g,
                                         AttachProtocol::Sap, AttachProtocol::SapResume};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fig7_attach_latency [--smoke] [--json FILE]\n");
      return 2;
    }
  }
  const int n = smoke ? 8 : 100;

  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  std::printf("=== Fig.7: attachment latency breakdown (BL = Magma/EPC baseline, "
              "CB = CellBricks/SAP) ===\n");
  std::printf("%d attach requests per cell; radio/RRC time excluded, as in the paper.\n\n", n);
  std::printf("%-11s %-4s %10s %12s %8s %8s %8s   %s\n", "placement", "arch", "total(ms)",
              "agw+core", "eNB", "UE", "other", "paper-total(ms)");

  const auto placements = attach_placements();
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto& p = placements[i];
    double totals[2] = {0, 0};
    for (Architecture arch : {Architecture::Mno, Architecture::CellBricks}) {
      const AttachBreakdown b = run_attach_experiment(arch, p.cloud_rtt, n);
      const bool cb = arch == Architecture::CellBricks;
      totals[cb ? 1 : 0] = b.total_ms;
      std::printf("%-11s %-4s %10.2f %12.2f %8.2f %8.2f %8.2f   %.2f\n", p.name.c_str(),
                  cb ? "CB" : "BL", b.total_ms, b.agw_core_ms, b.enb_ms, b.ue_ms, b.other_ms,
                  cb ? kPaper[i].cb_total : kPaper[i].bl_total);
    }
    if (totals[0] > 0) {
      std::printf("  -> CB vs BL: %+.1f%%  (paper: %+.1f%%)\n\n",
                  (totals[1] / totals[0] - 1.0) * 100.0,
                  (kPaper[i].cb_total / kPaper[i].bl_total - 1.0) * 100.0);
    }
  }
  std::printf("Shape check: CB ~equal locally, faster with remote DB because SAP needs one\n"
              "broker round-trip where the S6A baseline needs two (AIR + ULR).\n");

  // --- Per-protocol sweep ----------------------------------------------------
  std::printf("\n=== Per-protocol attach latency (same cycle, all four protocols) ===\n");
  std::printf("%-11s %-11s %10s %10s %10s %10s\n", "placement", "protocol", "attach(ms)",
              "resume(ms)", "resumes", "fallbacks");
  FILE* json = nullptr;
  if (json_path != nullptr) {
    json = std::fopen(json_path, "w");
    if (json == nullptr) {
      std::perror("bench_fig7_attach_latency: --json open");
      return 2;
    }
    std::fprintf(json, "{\n  \"bench\": \"fig7_attach\",\n  \"mode\": \"%s\",\n"
                       "  \"placements\": [\n",
                 smoke ? "smoke" : "full");
  }
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto& p = placements[i];
    if (json != nullptr) {
      std::fprintf(json, "    {\"placement\": \"%s\", \"cloud_rtt_ms\": %.2f, \"protocols\": {",
                   p.name.c_str(), p.cloud_rtt.to_millis());
    }
    for (std::size_t j = 0; j < std::size(kProtocols); ++j) {
      const AttachProtocol proto = kProtocols[j];
      const AttachBreakdown b = run_attach_experiment(proto, p.cloud_rtt, n);
      if (proto == AttachProtocol::SapResume) {
        std::printf("%-11s %-11s %10.2f %10.2f %10d %10d\n", p.name.c_str(), to_string(proto),
                    b.total_ms, b.resume_ms, b.resumes, b.resume_fallbacks);
      } else {
        std::printf("%-11s %-11s %10.2f %10s %10s %10s\n", p.name.c_str(), to_string(proto),
                    b.total_ms, "-", "-", "-");
      }
      if (json != nullptr) {
        std::fprintf(json,
                     "%s\n      \"%s\": {\"attach_ms\": %.3f, \"attaches\": %d, "
                     "\"resume_ms\": %.3f, \"resumes\": %d, \"fallbacks\": %d}",
                     j == 0 ? "" : ",", to_string(proto), b.total_ms, b.attaches, b.resume_ms,
                     b.resumes, b.resume_fallbacks);
      }
    }
    if (json != nullptr) {
      std::fprintf(json, "}}%s\n", i + 1 < placements.size() ? "," : "");
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
  }
  std::printf("(5g_aka pays a third home round-trip over eps_aka; sap_resume's resume\n"
              " column is the local-verification re-attach — no broker on the path)\n");
  std::printf("\n%s\n", metrics.digest().c_str());
  return 0;
}
