// SAP crypto microbenchmarks (google-benchmark) — backs the §6.1 claim that
// "our changes to Magma such as adding brokerd and crypto operations
// introduce negligible performance overhead (~2 ms)": measures the real CPU
// cost of every cryptographic operation on the SAP and billing paths.
#include <benchmark/benchmark.h>

#include "cellbricks/billing.hpp"
#include "cellbricks/sap.hpp"
#include "crypto/box.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

using namespace cb;
using namespace cb::crypto;
using namespace cb::cellbricks;

namespace {

// Shared fixtures (keygen once; 1024-bit keys, the deployment-realistic
// size; tests use 512 for speed).
struct Fixture {
  Rng rng{7};
  CertificateAuthority ca{"root", rng, 1024};
  RsaKeyPair broker_keys{RsaKeyPair::generate(rng, 1024)};
  Certificate broker_cert{ca.issue("broker", broker_keys.public_key(), TimePoint::zero(),
                                   TimePoint::zero() + Duration::s(1e9))};
  RsaKeyPair telco_keys{RsaKeyPair::generate(rng, 1024)};
  Certificate telco_cert{ca.issue("telco", telco_keys.public_key(), TimePoint::zero(),
                                  TimePoint::zero() + Duration::s(1e9))};
  RsaKeyPair ue_keys{RsaKeyPair::generate(rng, 1024)};

  SapUe ue{"alice", "broker", RsaKeyPair(ue_keys), broker_keys.public_key()};
  SapTelco telco{"telco", RsaKeyPair(telco_keys), telco_cert, ca.public_key()};
  SapBroker broker{"broker", RsaKeyPair(broker_keys), broker_cert, ca.public_key()};

  Fixture() { broker.add_subscriber("alice", ue_keys.public_key()); }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Sha256_1KiB(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.random_bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacSha256_1KiB(benchmark::State& state) {
  Rng rng(2);
  const Bytes key = rng.random_bytes(32);
  const Bytes data = rng.random_bytes(1024);
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_HmacSha256_1KiB);

void BM_ChaCha20_16KiB(benchmark::State& state) {
  Rng rng(3);
  const Bytes key = rng.random_bytes(32);
  const Bytes nonce = rng.random_bytes(12);
  const Bytes data = rng.random_bytes(16384);
  for (auto _ : state) benchmark::DoNotOptimize(chacha20_xor(key, nonce, 1, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_ChaCha20_16KiB);

void BM_RsaSign1024(benchmark::State& state) {
  Fixture& f = fixture();
  const Bytes msg = to_bytes("attach request payload");
  for (auto _ : state) benchmark::DoNotOptimize(f.ue_keys.sign(msg));
}
BENCHMARK(BM_RsaSign1024);

void BM_RsaVerify1024(benchmark::State& state) {
  Fixture& f = fixture();
  const Bytes msg = to_bytes("attach request payload");
  const Bytes sig = f.ue_keys.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ue_keys.public_key().verify(msg, sig));
  }
}
BENCHMARK(BM_RsaVerify1024);

void BM_SealedBox_256B(benchmark::State& state) {
  Fixture& f = fixture();
  Rng rng(4);
  const Bytes msg = rng.random_bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seal(f.broker_keys.public_key(), msg, rng));
  }
}
BENCHMARK(BM_SealedBox_256B);

void BM_SapUeMakeAuthReq(benchmark::State& state) {
  Fixture& f = fixture();
  Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(f.ue.make_auth_req("telco", rng));
}
BENCHMARK(BM_SapUeMakeAuthReq);

void BM_SapTelcoAugment(benchmark::State& state) {
  Fixture& f = fixture();
  Rng rng(6);
  const Bytes req_u = f.ue.make_auth_req("telco", rng);
  for (auto _ : state) benchmark::DoNotOptimize(f.telco.make_auth_req_t(req_u, QosCap{}));
}
BENCHMARK(BM_SapTelcoAugment);

void BM_SapBrokerProcess(benchmark::State& state) {
  Fixture& f = fixture();
  Rng rng(8);
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh nonce each iteration (the replay cache would reject reuse).
    const Bytes req_u = f.ue.make_auth_req("telco", rng);
    const Bytes req_t = f.telco.make_auth_req_t(req_u, QosCap{});
    state.ResumeTiming();
    auto d = f.broker.process_auth_req(req_t, TimePoint::zero(), rng, QosInfo{}, nullptr);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_SapBrokerProcess);

void BM_TrafficReportSignSeal(benchmark::State& state) {
  Fixture& f = fixture();
  Rng rng(9);
  TrafficReport r;
  r.session_id = 1;
  r.dl_bytes = 1 << 20;
  const Bytes bytes = r.serialize();
  for (auto _ : state) {
    ByteWriter w;
    w.bytes(bytes);
    w.bytes(f.ue.sign(bytes));
    benchmark::DoNotOptimize(seal(f.broker_keys.public_key(), w.data(), rng));
  }
}
BENCHMARK(BM_TrafficReportSignSeal);

}  // namespace

BENCHMARK_MAIN();
