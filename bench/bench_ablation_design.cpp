// Ablations over CellBricks design choices (DESIGN.md §5):
//
//  A. MPTCP address_worker wait — sweep the wait between address change and
//     subflow creation (Linux hard-codes 500 ms; §6.2 argues for removing
//     it). Metric: mean goodput over a multi-handover drive.
//  B. Billing report interval — §4.3 says reports go "every many seconds";
//     shorter intervals detect fraud faster but cost more crypto/traffic.
//     Metric: reports sent + time until a 1.5x over-reporter drops below
//     the authorization threshold.
//  C. Broker placement — SAP's single round-trip means attach latency (the
//     paper's d) degrades linearly with broker RTT; this quantifies how
//     far a broker can sit before d hurts the drive workload.
//  D. Attach protocol — the protocol axis (eps_aka | 5g_aka | sap |
//     sap_resume) under the same us-west-1 placement: 5G-AKA's third home
//     round-trip vs SAP's single broker trip vs the ticket-resume re-attach
//     that needs no broker at all (DESIGN.md §14).
#include <cstdio>

#include "obs/metrics.hpp"
#include "apps/iperf.hpp"
#include "scenario/attach_experiment.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

double drive_goodput_mbps(Duration wait, Duration cloud_rtt) {
  WorldConfig cfg;
  cfg.arch = Architecture::CellBricks;
  cfg.seed = 31;
  cfg.route = RouteSpec{"ablation", true, 25.0, 900.0, ran::RatePolicy::night()};
  cfg.n_towers = 10;
  cfg.mptcp_address_wait = wait;
  cfg.cloud_rtt = cloud_rtt;
  World world(cfg);
  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(250));
  world.start();
  world.simulator().run_for(Duration::s(3));
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  world.simulator().run_for(Duration::s(240));
  return client.mean_throughput_bps() / 1e6;
}

}  // namespace

int main() {
  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  std::printf("=== Ablation A: MPTCP address_worker wait (night drive, ~9 handovers) ===\n");
  std::printf("%12s %16s\n", "wait (ms)", "goodput (mbps)");
  for (int wait_ms : {0, 100, 250, 500, 1000, 2000}) {
    std::printf("%12d %16.2f\n",
                wait_ms, drive_goodput_mbps(Duration::ms(wait_ms), Duration::millis(7.2)));
  }
  std::printf("(longer waits stretch every re-attach outage; 0 is strictly best —\n"
              " the flap-damping rationale does not apply to hard address loss)\n\n");

  std::printf("=== Ablation B: billing report interval vs fraud-detection latency ===\n");
  std::printf("%14s %14s %22s %12s\n", "interval (s)", "reports", "detection (s)", "caught");
  for (int interval_s : {2, 5, 10, 30}) {
    WorldConfig cfg;
    cfg.arch = Architecture::CellBricks;
    cfg.seed = 32;
    cfg.n_towers = 1;
    cfg.route = RouteSpec{"static", false, 0.1, 500.0, ran::RatePolicy::unlimited()};
    cfg.unlimited_policy = true;
    cfg.telco0_overreport = 1.5;
    cfg.report_interval = Duration::s(interval_s);
    World world(cfg);
    apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                                 Duration::s(600));
    bool attached = false;
    world.ue_agent()->attach(1, [&](Result<net::Ipv4Addr> r) { attached = r.ok(); });
    world.simulator().run_for(Duration::s(2));
    if (!attached) continue;
    apps::IperfDownloadClient client(world.ue_transport(),
                                     net::EndPoint{world.server_addr(), 5001},
                                     world.simulator());
    double detected_at = -1;
    for (int t = 0; t < 120; ++t) {
      world.simulator().run_for(Duration::s(1));
      if (world.brokerd()->reputation().telco_score("btelco-0") < 0.5) {
        detected_at = world.simulator().now().to_seconds();
        break;
      }
    }
    std::printf("%14d %14llu %22.1f %12s\n", interval_s,
                static_cast<unsigned long long>(world.brokerd()->reports_received()),
                detected_at, detected_at > 0 ? "yes" : "no");
  }
  std::printf("(shorter reporting cycles catch a 1.5x over-reporter proportionally\n"
              " faster — at the cost of proportionally more signed/sealed reports)\n\n");

  std::printf("=== Ablation C: broker placement (attach latency d under the drive) ===\n");
  std::printf("%16s %16s\n", "broker RTT (ms)", "goodput (mbps)");
  for (double rtt_ms : {0.5, 7.2, 30.0, 73.5, 150.0}) {
    std::printf("%16.1f %16.2f\n",
                rtt_ms, drive_goodput_mbps(Duration::ms(500), Duration::millis(rtt_ms)));
  }
  std::printf("(d = 24.5 ms processing + broker RTT; even a cross-continent broker\n"
              " costs little because d is small next to the MPTCP wait + slow start)\n\n");

  std::printf("=== Ablation D: attach protocol (us-west-1 placement, 40 cycles) ===\n");
  std::printf("%-12s %12s %12s %10s %10s\n", "protocol", "attach (ms)", "resume (ms)",
              "resumes", "fallbacks");
  for (AttachProtocol proto : {AttachProtocol::EpsAka, AttachProtocol::Aka5g,
                               AttachProtocol::Sap, AttachProtocol::SapResume}) {
    const AttachBreakdown b = run_attach_experiment(proto, Duration::millis(7.2), 40);
    if (proto == AttachProtocol::SapResume) {
      std::printf("%-12s %12.2f %12.2f %10d %10d\n", to_string(proto), b.total_ms, b.resume_ms,
                  b.resumes, b.resume_fallbacks);
    } else {
      std::printf("%-12s %12.2f %12s %10s %10s\n", to_string(proto), b.total_ms, "-", "-", "-");
    }
  }
  std::printf("(5g_aka pays a third HSS round-trip + SUCI/RES* crypto over eps_aka;\n"
              " sap_resume's ticket re-attach cuts the broker leg out of d entirely)\n");
  std::printf("\n%s\n", metrics.digest().c_str());
  return 0;
}
