// Fig.8 — iperf throughput over time around a handover event: MNO (TCP,
// network handover, IP preserved) vs CellBricks (MPTCP, detach + SAP
// re-attach + new subflow).
//
// Reproduces the paper's qualitative shape: at the handover the MPTCP line
// dips toward zero (the 500 ms address_worker wait + re-attach), then ramps
// back in slow start and briefly OVERSHOOTS the TCP line before both settle
// at the policy rate.
#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"
#include "apps/iperf.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct Trace {
  std::vector<double> mbps;       // per-second
  std::vector<double> handovers;  // seconds
};

Trace run(Architecture arch) {
  WorldConfig cfg;
  cfg.arch = arch;
  cfg.seed = 42;
  cfg.n_towers = 3;
  // ~20 m/s over 700 m spacing: the (single) handover lands near t=23 s
  // into the measurement window, as in the paper's Fig.8 trace.
  cfg.route = RouteSpec{"fig8", false, 20.0, 700.0, ran::RatePolicy::day()};
  World world(cfg);

  Trace trace;
  world.on_cell_change = [&](ran::CellId from, ran::CellId) {
    if (from != 0) trace.handovers.push_back(world.simulator().now().to_seconds() - 8.0);
  };

  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(60));
  world.start();
  world.simulator().run_for(Duration::s(8));  // initial attach + warmup
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  const double t0 = world.simulator().now().to_seconds();
  world.simulator().run_for(Duration::s(50));

  const auto rates = client.series().rates();
  const auto first = static_cast<std::size_t>(t0);
  for (std::size_t i = first; i < rates.size() && trace.mbps.size() < 50; ++i) {
    trace.mbps.push_back(rates[i] * 8.0 / 1e6);
  }
  return trace;
}

}  // namespace

int main() {
  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  std::printf("=== Fig.8: iperf throughput around a handover (Day policy) ===\n\n");
  const Trace mno = run(Architecture::Mno);
  const Trace cbr = run(Architecture::CellBricks);

  std::printf("%4s %12s %12s\n", "t(s)", "MNO(mbps)", "CB(mbps)");
  for (std::size_t t = 0; t < 50; ++t) {
    const bool ho = [&] {
      for (double h : cbr.handovers) {
        if (t <= h && h < t + 1) return true;
      }
      return false;
    }();
    std::printf("%4zu %12.2f %12.2f%s\n", t, t < mno.mbps.size() ? mno.mbps[t] : 0.0,
                t < cbr.mbps.size() ? cbr.mbps[t] : 0.0, ho ? "   <-- handover" : "");
  }

  // Shape verification: dip at handover, recovery within a few seconds.
  if (!cbr.handovers.empty()) {
    const auto h = static_cast<std::size_t>(cbr.handovers.front());
    auto avg = [&](const std::vector<double>& v, std::size_t from, std::size_t to) {
      double s = 0;
      std::size_t n = 0;
      for (std::size_t i = from; i < to && i < v.size(); ++i, ++n) s += v[i];
      return n ? s / static_cast<double>(n) : 0.0;
    };
    std::printf("\nCB around handover at t=%.1f s:\n", cbr.handovers.front());
    std::printf("  before [h-5,h):   %.2f mbps\n", avg(cbr.mbps, h - 5, h));
    std::printf("  dip    [h,h+2):   %.2f mbps (paper: drops toward 0 for ~0.5 s)\n",
                avg(cbr.mbps, h, h + 2));
    std::printf("  after  [h+2,h+7): %.2f mbps (paper: ramps back, briefly overshoots)\n",
                avg(cbr.mbps, h + 2, h + 7));
  }
  std::printf("\n%s\n", metrics.digest().c_str());
  return 0;
}
