// Fig.8 — iperf throughput over time around a handover event: MNO (TCP,
// network handover, IP preserved) vs CellBricks (MPTCP, detach + SAP
// re-attach + new subflow).
//
// Reproduces the paper's qualitative shape: at the handover the MPTCP line
// dips toward zero (the 500 ms address_worker wait + re-attach), then ramps
// back in slow start and briefly OVERSHOOTS the TCP line before both settle
// at the policy rate.
//
// The re-attach section replays the same drive under sap_resume: the target
// bTelco verifies the broker-minted resumption ticket locally, so the
// re-attach d drops by the broker leg. The bench self-gates on that delta —
// sap_resume's re-attach latency must be STRICTLY below plain sap's (the
// number tools/bench.sh freezes into BENCH_sap.json) — and exits nonzero
// otherwise.
//
// Usage: bench_fig8_handover_timeseries [--json FILE]
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "apps/iperf.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct Trace {
  std::vector<double> mbps;       // per-second
  std::vector<double> handovers;  // seconds
  Summary reattach_ms;            // attach d of every post-initial attach
  std::uint64_t resumes = 0;
  std::uint64_t fallbacks = 0;
};

Trace run(AttachProtocol protocol) {
  WorldConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = 42;
  cfg.n_towers = 3;
  // ~20 m/s over 700 m spacing: the (single) handover lands near t=23 s
  // into the measurement window, as in the paper's Fig.8 trace.
  cfg.route = RouteSpec{"fig8", false, 20.0, 700.0, ran::RatePolicy::day()};
  World world(cfg);

  Trace trace;
  world.on_cell_change = [&](ran::CellId from, ran::CellId) {
    if (from != 0) trace.handovers.push_back(world.simulator().now().to_seconds() - 8.0);
  };
  // Per-attach d (radio excluded): everything after the first attach is a
  // handover re-attach. Installed before start() so World chains it.
  int attaches = 0;
  if (world.ue_agent() != nullptr) {
    world.ue_agent()->on_attached = [&](ran::CellId, Duration d) {
      if (attaches++ > 0) trace.reattach_ms.add(d.to_millis());
    };
  }

  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(60));
  world.start();
  world.simulator().run_for(Duration::s(8));  // initial attach + warmup
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  const double t0 = world.simulator().now().to_seconds();
  world.simulator().run_for(Duration::s(50));

  const auto rates = client.series().rates();
  const auto first = static_cast<std::size_t>(t0);
  for (std::size_t i = first; i < rates.size() && trace.mbps.size() < 50; ++i) {
    trace.mbps.push_back(rates[i] * 8.0 / 1e6);
  }
  if (world.ue_agent() != nullptr) {
    trace.resumes = world.ue_agent()->resumes_succeeded();
    trace.fallbacks = world.ue_agent()->resume_fallbacks();
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fig8_handover_timeseries [--json FILE]\n");
      return 2;
    }
  }

  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  std::printf("=== Fig.8: iperf throughput around a handover (Day policy) ===\n\n");
  const Trace mno = run(AttachProtocol::EpsAka);
  const Trace cbr = run(AttachProtocol::Sap);
  const Trace cbt = run(AttachProtocol::SapResume);

  std::printf("%4s %12s %12s\n", "t(s)", "MNO(mbps)", "CB(mbps)");
  for (std::size_t t = 0; t < 50; ++t) {
    const bool ho = [&] {
      for (double h : cbr.handovers) {
        if (t <= h && h < t + 1) return true;
      }
      return false;
    }();
    std::printf("%4zu %12.2f %12.2f%s\n", t, t < mno.mbps.size() ? mno.mbps[t] : 0.0,
                t < cbr.mbps.size() ? cbr.mbps[t] : 0.0, ho ? "   <-- handover" : "");
  }

  // Shape verification: dip at handover, recovery within a few seconds.
  if (!cbr.handovers.empty()) {
    const auto h = static_cast<std::size_t>(cbr.handovers.front());
    auto avg = [&](const std::vector<double>& v, std::size_t from, std::size_t to) {
      double s = 0;
      std::size_t n = 0;
      for (std::size_t i = from; i < to && i < v.size(); ++i, ++n) s += v[i];
      return n ? s / static_cast<double>(n) : 0.0;
    };
    std::printf("\nCB around handover at t=%.1f s:\n", cbr.handovers.front());
    std::printf("  before [h-5,h):   %.2f mbps\n", avg(cbr.mbps, h - 5, h));
    std::printf("  dip    [h,h+2):   %.2f mbps (paper: drops toward 0 for ~0.5 s)\n",
                avg(cbr.mbps, h, h + 2));
    std::printf("  after  [h+2,h+7): %.2f mbps (paper: ramps back, briefly overshoots)\n",
                avg(cbr.mbps, h + 2, h + 7));
  }

  // --- Re-attach latency: sap vs sap_resume ---------------------------------
  std::printf("\n=== Handover re-attach latency d (radio excluded) ===\n");
  const double sap_ms = cbr.reattach_ms.empty() ? 0.0 : cbr.reattach_ms.mean();
  const double resume_ms = cbt.reattach_ms.empty() ? 0.0 : cbt.reattach_ms.mean();
  std::printf("  sap        : %7.2f ms mean over %zu re-attach(es)\n", sap_ms,
              cbr.reattach_ms.count());
  std::printf("  sap_resume : %7.2f ms mean over %zu re-attach(es), %llu resumed, "
              "%llu fallback(s)\n",
              resume_ms, cbt.reattach_ms.count(),
              static_cast<unsigned long long>(cbt.resumes),
              static_cast<unsigned long long>(cbt.fallbacks));
  const double delta_ms = sap_ms - resume_ms;
  const bool pass = !cbr.reattach_ms.empty() && !cbt.reattach_ms.empty() && cbt.resumes > 0 &&
                    resume_ms < sap_ms;
  std::printf("  delta      : %7.2f ms (ticket resume skips the broker round-trip)\n", delta_ms);

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror("bench_fig8_handover_timeseries: --json open");
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig8_handover\",\n  \"reattach\": {\n"
                 "    \"sap\": {\"mean_ms\": %.3f, \"count\": %zu},\n"
                 "    \"sap_resume\": {\"mean_ms\": %.3f, \"count\": %zu, "
                 "\"resumes\": %llu, \"fallbacks\": %llu},\n"
                 "    \"delta_ms\": %.3f,\n    \"pass\": %s\n  }\n}\n",
                 sap_ms, cbr.reattach_ms.count(), resume_ms, cbt.reattach_ms.count(),
                 static_cast<unsigned long long>(cbt.resumes),
                 static_cast<unsigned long long>(cbt.fallbacks), delta_ms,
                 pass ? "true" : "false");
    std::fclose(f);
  }

  std::printf("\n%s\n", metrics.digest().c_str());
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: sap_resume re-attach latency (%.2f ms) is not strictly below "
                 "sap (%.2f ms)\n",
                 resume_ms, sap_ms);
    return 1;
  }
  return 0;
}
