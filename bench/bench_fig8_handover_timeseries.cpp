// Fig.8 — iperf throughput over time around a handover event: MNO (TCP,
// network handover, IP preserved) vs CellBricks (MPTCP, detach + SAP
// re-attach + new subflow).
//
// Reproduces the paper's qualitative shape: at the handover the MPTCP line
// dips toward zero (the 500 ms address_worker wait + re-attach), then ramps
// back in slow start and briefly OVERSHOOTS the TCP line before both settle
// at the policy rate.
//
// The re-attach section replays the same drive under sap_resume: the target
// bTelco verifies the broker-minted resumption ticket locally, so the
// re-attach d drops by the broker leg. The bench self-gates on that delta —
// sap_resume's re-attach latency must be STRICTLY below plain sap's (the
// number tools/bench.sh freezes into BENCH_sap.json) — and exits nonzero
// otherwise.
//
// The MTTHO section drives the full suburb/day route (12 towers, ~810 s)
// through the noisy measurement pipeline (shadowing + L3 filter) under all
// three reselection policies and reports the MEASURED mean time between
// handovers — the Table 1 number is an output of the reselection loop, not
// a configured constant. The a3_ttt arm gates against the route's
// calibration target (900 m / 73.50 s) at +-20%; tools/bench.sh freezes it
// into BENCH_scale.json.
//
// Usage: bench_fig8_handover_timeseries [--json FILE]
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"
#include "apps/iperf.hpp"
#include "scenario/world.hpp"

using namespace cb;
using namespace cb::scenario;

namespace {

struct Trace {
  std::vector<double> mbps;       // per-second
  std::vector<double> handovers;  // seconds
  Summary reattach_ms;            // attach d of every post-initial attach
  std::uint64_t resumes = 0;
  std::uint64_t fallbacks = 0;
};

Trace run(AttachProtocol protocol) {
  WorldConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = 42;
  cfg.n_towers = 3;
  // ~20 m/s over 700 m spacing: the (single) handover lands near t=23 s
  // into the measurement window, as in the paper's Fig.8 trace.
  cfg.route = RouteSpec{"fig8", false, 20.0, 700.0, ran::RatePolicy::day()};
  World world(cfg);

  Trace trace;
  world.on_cell_change = [&](ran::CellId from, ran::CellId) {
    if (from != 0) trace.handovers.push_back(world.simulator().now().to_seconds() - 8.0);
  };
  // Per-attach d (radio excluded): everything after the first attach is a
  // handover re-attach. Installed before start() so World chains it.
  int attaches = 0;
  if (world.ue_agent() != nullptr) {
    world.ue_agent()->on_attached = [&](ran::CellId, Duration d) {
      if (attaches++ > 0) trace.reattach_ms.add(d.to_millis());
    };
  }

  apps::IperfPushServer server(world.server_transport(), 5001, world.simulator(),
                               Duration::s(60));
  world.start();
  world.simulator().run_for(Duration::s(8));  // initial attach + warmup
  apps::IperfDownloadClient client(world.ue_transport(),
                                   net::EndPoint{world.server_addr(), 5001},
                                   world.simulator());
  const double t0 = world.simulator().now().to_seconds();
  world.simulator().run_for(Duration::s(50));

  const auto rates = client.series().rates();
  const auto first = static_cast<std::size_t>(t0);
  for (std::size_t i = first; i < rates.size() && trace.mbps.size() < 50; ++i) {
    trace.mbps.push_back(rates[i] * 8.0 / 1e6);
  }
  if (world.ue_agent() != nullptr) {
    trace.resumes = world.ue_agent()->resumes_succeeded();
    trace.fallbacks = world.ue_agent()->resume_fallbacks();
  }
  return trace;
}

// One policy arm of the measured-MTTHO A/B: the full suburb/day route under
// a noisy channel, handover statistics read back from the reselection log.
struct MtthoArm {
  const char* policy = "a3";
  std::uint64_t handovers = 0;
  double measured_s = 0.0;  // mean gap between consecutive handovers
};

MtthoArm run_mttho(ran::ReselectionPolicyKind policy, Duration ttt) {
  WorldConfig cfg;
  cfg.seed = 42;
  cfg.n_towers = 12;
  cfg.route = suburb_day();
  // Moderate suburban shadowing; the k=4 L3 filter is the 3GPP-shaped
  // smoothing every arm shares so the A/B isolates the policy itself.
  cfg.radio_config.channel.shadow_sigma_db = 3.5;
  cfg.radio_config.channel.decorrelation_m = 60.0;
  cfg.radio_config.l3_filter_k = 4;
  cfg.radio_config.policy = policy;
  cfg.radio_config.time_to_trigger = ttt;
  World world(cfg);
  world.start();
  const double route_s =
      cfg.route.tower_spacing_m * (cfg.n_towers - 1) / cfg.route.speed_mps;
  world.simulator().run_for(Duration::seconds(route_s + 4.0));

  MtthoArm arm;
  arm.policy = ran::to_string(policy);
  arm.handovers = world.handovers();
  // Mean gap between handover instants (initial acquisition excluded): the
  // measured MTTHO, independent of warmup and of where the route ends.
  const auto& events = world.radio().reselections();
  std::vector<TimePoint> at;
  for (const auto& e : events) {
    if (e.from != 0) at.push_back(e.at);
  }
  if (at.size() >= 2) {
    arm.measured_s = (at.back() - at.front()).to_seconds() /
                     static_cast<double>(at.size() - 1);
  }
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_fig8_handover_timeseries [--json FILE]\n");
      return 2;
    }
  }

  // Root obs registry: per-trial metrics merge here in index order
  // (TrialRunner) and the digest prints as the bench footer.
  obs::Registry metrics;
  obs::ScopedRegistry scoped(&metrics);

  std::printf("=== Fig.8: iperf throughput around a handover (Day policy) ===\n\n");
  const Trace mno = run(AttachProtocol::EpsAka);
  const Trace cbr = run(AttachProtocol::Sap);
  const Trace cbt = run(AttachProtocol::SapResume);

  std::printf("%4s %12s %12s\n", "t(s)", "MNO(mbps)", "CB(mbps)");
  for (std::size_t t = 0; t < 50; ++t) {
    const bool ho = [&] {
      for (double h : cbr.handovers) {
        if (t <= h && h < t + 1) return true;
      }
      return false;
    }();
    std::printf("%4zu %12.2f %12.2f%s\n", t, t < mno.mbps.size() ? mno.mbps[t] : 0.0,
                t < cbr.mbps.size() ? cbr.mbps[t] : 0.0, ho ? "   <-- handover" : "");
  }

  // Shape verification: dip at handover, recovery within a few seconds.
  if (!cbr.handovers.empty()) {
    const auto h = static_cast<std::size_t>(cbr.handovers.front());
    auto avg = [&](const std::vector<double>& v, std::size_t from, std::size_t to) {
      double s = 0;
      std::size_t n = 0;
      for (std::size_t i = from; i < to && i < v.size(); ++i, ++n) s += v[i];
      return n ? s / static_cast<double>(n) : 0.0;
    };
    std::printf("\nCB around handover at t=%.1f s:\n", cbr.handovers.front());
    std::printf("  before [h-5,h):   %.2f mbps\n", avg(cbr.mbps, h - 5, h));
    std::printf("  dip    [h,h+2):   %.2f mbps (paper: drops toward 0 for ~0.5 s)\n",
                avg(cbr.mbps, h, h + 2));
    std::printf("  after  [h+2,h+7): %.2f mbps (paper: ramps back, briefly overshoots)\n",
                avg(cbr.mbps, h + 2, h + 7));
  }

  // --- Re-attach latency: sap vs sap_resume ---------------------------------
  std::printf("\n=== Handover re-attach latency d (radio excluded) ===\n");
  const double sap_ms = cbr.reattach_ms.empty() ? 0.0 : cbr.reattach_ms.mean();
  const double resume_ms = cbt.reattach_ms.empty() ? 0.0 : cbt.reattach_ms.mean();
  std::printf("  sap        : %7.2f ms mean over %zu re-attach(es)\n", sap_ms,
              cbr.reattach_ms.count());
  std::printf("  sap_resume : %7.2f ms mean over %zu re-attach(es), %llu resumed, "
              "%llu fallback(s)\n",
              resume_ms, cbt.reattach_ms.count(),
              static_cast<unsigned long long>(cbt.resumes),
              static_cast<unsigned long long>(cbt.fallbacks));
  const double delta_ms = sap_ms - resume_ms;
  const bool reattach_pass = !cbr.reattach_ms.empty() && !cbt.reattach_ms.empty() &&
                             cbt.resumes > 0 && resume_ms < sap_ms;
  std::printf("  delta      : %7.2f ms (ticket resume skips the broker round-trip)\n", delta_ms);

  // --- Measured MTTHO: policy A/B over the full suburb/day route -----------
  std::printf("\n=== Measured MTTHO, Suburb/D route (shadowing 3.5 dB, L3 k=4) ===\n");
  const double expected_s = suburb_day().expected_mttho_s();
  const MtthoArm a3 = run_mttho(ran::ReselectionPolicyKind::A3Hysteresis, Duration::ms(0));
  const MtthoArm ttt = run_mttho(ran::ReselectionPolicyKind::A3TimeToTrigger, Duration::ms(480));
  const MtthoArm rank = run_mttho(ran::ReselectionPolicyKind::RankBased, Duration::ms(0));
  for (const MtthoArm* arm : {&a3, &ttt, &rank}) {
    std::printf("  %-7s: %3llu handover(s), mttho %6.2f s\n", arm->policy,
                static_cast<unsigned long long>(arm->handovers), arm->measured_s);
  }
  // Calibration gate on the damped (a3_ttt) arm: the reselection loop must
  // REPRODUCE the Table 1 number from geometry + noise, within +-20%.
  const bool mttho_pass = ttt.handovers >= 2 && ttt.measured_s > expected_s * 0.8 &&
                          ttt.measured_s < expected_s * 1.2 &&
                          rank.handovers >= a3.handovers;
  std::printf("  expected %.2f s (Table 1); a3_ttt arm %s the +-20%% calibration band;\n"
              "  rank arm churns >= a3 (%llu vs %llu changes)\n",
              expected_s, mttho_pass ? "is WITHIN" : "MISSES",
              static_cast<unsigned long long>(rank.handovers),
              static_cast<unsigned long long>(a3.handovers));

  const bool pass = reattach_pass && mttho_pass;

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror("bench_fig8_handover_timeseries: --json open");
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig8_handover\",\n  \"reattach\": {\n"
                 "    \"sap\": {\"mean_ms\": %.3f, \"count\": %zu},\n"
                 "    \"sap_resume\": {\"mean_ms\": %.3f, \"count\": %zu, "
                 "\"resumes\": %llu, \"fallbacks\": %llu},\n"
                 "    \"delta_ms\": %.3f,\n    \"pass\": %s\n  },\n"
                 "  \"mttho\": {\n    \"route\": \"Suburb/D\",\n"
                 "    \"expected_s\": %.3f,\n    \"measured_s\": %.3f,\n"
                 "    \"policy\": \"%s\",\n    \"handovers\": %llu,\n"
                 "    \"arms\": {\n"
                 "      \"a3\": {\"handovers\": %llu, \"mttho_s\": %.3f},\n"
                 "      \"a3_ttt\": {\"handovers\": %llu, \"mttho_s\": %.3f},\n"
                 "      \"rank\": {\"handovers\": %llu, \"mttho_s\": %.3f}\n"
                 "    },\n    \"pass\": %s\n  }\n}\n",
                 sap_ms, cbr.reattach_ms.count(), resume_ms, cbt.reattach_ms.count(),
                 static_cast<unsigned long long>(cbt.resumes),
                 static_cast<unsigned long long>(cbt.fallbacks), delta_ms,
                 reattach_pass ? "true" : "false", expected_s, ttt.measured_s, ttt.policy,
                 static_cast<unsigned long long>(ttt.handovers),
                 static_cast<unsigned long long>(a3.handovers), a3.measured_s,
                 static_cast<unsigned long long>(ttt.handovers), ttt.measured_s,
                 static_cast<unsigned long long>(rank.handovers), rank.measured_s,
                 mttho_pass ? "true" : "false");
    std::fclose(f);
  }

  std::printf("\n%s\n", metrics.digest().c_str());
  if (!reattach_pass) {
    std::fprintf(stderr,
                 "FAIL: sap_resume re-attach latency (%.2f ms) is not strictly below "
                 "sap (%.2f ms)\n",
                 resume_ms, sap_ms);
  }
  if (!mttho_pass) {
    std::fprintf(stderr,
                 "FAIL: measured MTTHO %.2f s (a3_ttt) outside +-20%% of the %.2f s "
                 "calibration target, or rank arm did not churn >= a3\n",
                 ttt.measured_s, expected_s);
  }
  return pass ? 0 : 1;
}
